// Package faultinject is the chaos-engineering substrate of the QED²
// pipeline: named injection points ("sites") scattered through the solver,
// the analysis engine, the front-end and the bench runner, which a test (or
// the QED2_FAULTS environment variable) can arm with forced panics,
// injected solver errors, artificial latency, or early deadline firing.
//
// The package is a no-op unless armed: every site costs one atomic pointer
// load when no plan is active, so the hooks stay compiled into production
// binaries. Firing decisions are deterministic — each rule keeps a per-site
// hit counter, and a seeded hash of (site, hit index) decides probabilistic
// rules — so a chaos run is reproducible given the plan, the seed, and a
// deterministic hit order (workers=1).
//
// Sites currently wired (see DESIGN.md §11 for the taxonomy):
//
//	smt.solve       — entry of every SMT query (panic, latency, error, deadline)
//	smt.step        — solver step loop, checked every few steps (error, deadline, panic)
//	smt.incremental — session build/extend for batched slice queries (error,
//	                  deadline — poisons the session; panics propagate to the
//	                  base-preparation recover boundary in core)
//	core.query      — per-query worker wrapper in the analysis engine (panic, latency)
//	circom.compile  — front-end entry (panic; exercises the recover boundary)
//	bench.instance  — per-instance bench runner (panic; exercises instance isolation)
//	service.enqueue — qed2d job admission (error/deadline reject as retriable overload)
//	service.store.get — report-store lookup (error/deadline degrade to a cache miss)
//	service.store.put — report-store insert (error/deadline surface as a put failure)
//	service.handler — qed2d HTTP handler entry (panic; exercises the handler recover boundary)
//	worker.kill     — sandbox worker spawn (error/deadline SIGKILLs the child
//	                  mid-analysis; checked in the parent so hit counters
//	                  advance across jobs, applied in the child)
//	worker.hang     — sandbox worker spawn (error/deadline wedges the child
//	                  mid-analysis until the wall-clock watchdog kills it)
//	store.corrupt   — disk-tier entry read (error/deadline flips a byte of
//	                  the file before decoding; exercises checksum
//	                  verification and corrupt-file quarantine)
package faultinject

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Kind is the effect of a rule when it fires.
type Kind string

// Kinds.
const (
	// KindPanic panics at the site (message identifies the site and hit).
	KindPanic Kind = "panic"
	// KindError reports an injected error for the site's error channel —
	// the solver converts it into an Unknown outcome.
	KindError Kind = "error"
	// KindLatency sleeps for the rule's Delay at the site.
	KindLatency Kind = "latency"
	// KindDeadline makes the site behave as if its wall-clock deadline had
	// already fired.
	KindDeadline Kind = "deadline"
)

// Rule arms one site with one effect. Exactly one of Rate and Every selects
// the firing schedule: Rate fires a deterministic pseudo-random fraction of
// hits, Every fires every Nth hit (1-based, so Every=1 fires always).
type Rule struct {
	// Site names the injection point ("smt.solve", "core.query", ...).
	Site string
	// Kind is the effect.
	Kind Kind
	// Rate is the fraction of hits that fire, in [0, 1].
	Rate float64
	// Every fires on hits n with n % Every == 0 (hit counting starts at 1).
	Every int64
	// Delay is the sleep duration for KindLatency rules.
	Delay time.Duration
	// Msg overrides the injected error/panic message.
	Msg string
}

// Fault is what a site check reports back to the caller. The zero value
// means "nothing injected". Panics and latency are performed inside Check
// itself; errors and deadline firing are returned for the site to apply in
// its own failure vocabulary.
type Fault struct {
	// Err is a non-empty injected error message.
	Err string
	// Deadline reports that the site should act as if its deadline passed.
	Deadline bool
}

// Plan is an armed set of rules. A Plan must not be mutated after Enable.
type Plan struct {
	// Seed drives the deterministic firing hash of Rate rules.
	Seed int64
	// Rules lists the armed sites; several rules may share a site.
	Rules []Rule
	// hits counts site checks per rule (allocated by Enable).
	hits []atomic.Int64
}

// active is the armed plan; nil when injection is disabled.
var active atomic.Pointer[Plan]

// Enable arms the plan process-wide. Passing nil disables injection.
func Enable(p *Plan) {
	if p != nil {
		p.hits = make([]atomic.Int64, len(p.Rules))
	}
	active.Store(p)
}

// Disable disarms injection.
func Disable() { active.Store(nil) }

// Enabled reports whether a plan is armed.
func Enabled() bool { return active.Load() != nil }

// Check is the site hook: it looks up the armed plan (fast nil path),
// applies panic and latency effects in place, and returns error/deadline
// effects for the caller. When several rules match the site, panics take
// precedence, then the remaining effects merge (an error message wins over
// an empty one).
func Check(site string) Fault {
	p := active.Load()
	if p == nil {
		return Fault{}
	}
	return p.check(site)
}

func (p *Plan) check(site string) Fault {
	var f Fault
	var sleep time.Duration
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Site != site {
			continue
		}
		n := p.hits[i].Add(1)
		if !fires(r, p.Seed, n) {
			continue
		}
		switch r.Kind {
		case KindPanic:
			msg := r.Msg
			if msg == "" {
				msg = fmt.Sprintf("faultinject: forced panic at %s (hit %d)", site, n)
			}
			panic(msg)
		case KindError:
			if f.Err == "" {
				f.Err = r.Msg
				if f.Err == "" {
					f.Err = fmt.Sprintf("injected fault at %s", site)
				}
			}
		case KindLatency:
			if r.Delay > sleep {
				sleep = r.Delay
			}
		case KindDeadline:
			f.Deadline = true
		}
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return f
}

// fires decides whether rule r fires on its n-th hit.
func fires(r *Rule, seed, n int64) bool {
	if r.Every > 0 {
		return n%r.Every == 0
	}
	if r.Rate <= 0 {
		return false
	}
	if r.Rate >= 1 {
		return true
	}
	h := splitmix64(uint64(seed) ^ hashString(r.Site) ^ uint64(n)*0x9E3779B97F4A7C15)
	return float64(h>>11)/float64(1<<53) < r.Rate
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap,
// well-distributed 64-bit mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// hashString is FNV-1a.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Hits returns the number of times each site was checked (not fired) under
// the currently armed plan, keyed by site name. Empty when disabled.
// Intended for tests asserting that a schedule actually exercised a site.
func Hits() map[string]int64 {
	p := active.Load()
	if p == nil {
		return nil
	}
	out := map[string]int64{}
	for i := range p.Rules {
		out[p.Rules[i].Site] += p.hits[i].Load()
	}
	return out
}

// EnvVar is the environment variable EnableFromEnv reads.
const EnvVar = "QED2_FAULTS"

// EnvSeedVar optionally overrides the plan seed for EnableFromEnv.
const EnvSeedVar = "QED2_FAULTS_SEED"

// EnableFromEnv arms a plan parsed from QED2_FAULTS, returning whether one
// was armed. The format is semicolon-separated rules:
//
//	kind@site[:key=value]...
//
// with keys rate (float), every (int), delay (Go duration), msg (string):
//
//	QED2_FAULTS="panic@smt.solve:rate=0.1;latency@core.query:every=3:delay=5ms"
//
// QED2_FAULTS_SEED (integer) sets the deterministic firing seed (default 1).
func EnableFromEnv() (bool, error) {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return false, nil
	}
	plan, err := ParsePlan(spec)
	if err != nil {
		return false, err
	}
	if s := os.Getenv(EnvSeedVar); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return false, fmt.Errorf("faultinject: bad %s %q: %v", EnvSeedVar, s, err)
		}
		plan.Seed = seed
	}
	Enable(plan)
	return true, nil
}

// ParsePlan parses the QED2_FAULTS rule syntax into a plan with Seed 1.
func ParsePlan(spec string) (*Plan, error) {
	p := &Plan{Seed: 1}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := parseRule(part)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, r)
	}
	if len(p.Rules) == 0 {
		return nil, fmt.Errorf("faultinject: no rules in %q", spec)
	}
	return p, nil
}

func parseRule(s string) (Rule, error) {
	fields := strings.Split(s, ":")
	kindSite := strings.SplitN(fields[0], "@", 2)
	if len(kindSite) != 2 || kindSite[0] == "" || kindSite[1] == "" {
		return Rule{}, fmt.Errorf("faultinject: rule %q: want kind@site", s)
	}
	r := Rule{Site: kindSite[1]}
	switch Kind(kindSite[0]) {
	case KindPanic, KindError, KindLatency, KindDeadline:
		r.Kind = Kind(kindSite[0])
	default:
		return Rule{}, fmt.Errorf("faultinject: rule %q: unknown kind %q (want %s)", s, kindSite[0], knownKinds())
	}
	for _, kv := range fields[1:] {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Rule{}, fmt.Errorf("faultinject: rule %q: malformed option %q (want key=value)", s, kv)
		}
		var err error
		switch key {
		case "rate":
			r.Rate, err = strconv.ParseFloat(val, 64)
			if err == nil && (r.Rate < 0 || r.Rate > 1) {
				err = fmt.Errorf("rate %v outside [0, 1]", r.Rate)
			}
		case "every":
			r.Every, err = strconv.ParseInt(val, 10, 64)
			if err == nil && r.Every <= 0 {
				err = fmt.Errorf("every must be positive, got %d", r.Every)
			}
		case "delay":
			r.Delay, err = time.ParseDuration(val)
		case "msg":
			r.Msg = val
		default:
			err = fmt.Errorf("unknown option %q", key)
		}
		if err != nil {
			return Rule{}, fmt.Errorf("faultinject: rule %q: %v", s, err)
		}
	}
	if r.Rate == 0 && r.Every == 0 {
		return Rule{}, fmt.Errorf("faultinject: rule %q: needs rate= or every=", s)
	}
	if r.Kind == KindLatency && r.Delay <= 0 {
		return Rule{}, fmt.Errorf("faultinject: rule %q: latency needs delay=", s)
	}
	return r, nil
}

func knownKinds() string {
	ks := []string{string(KindPanic), string(KindError), string(KindLatency), string(KindDeadline)}
	sort.Strings(ks)
	return strings.Join(ks, "|")
}
