// Package core implements the QED² analysis for detecting under-constrained
// arithmetic circuits: given a rank-1 constraint system, it decides for each
// output signal whether the constraints determine it uniquely from the
// inputs, combining lightweight uniqueness-constraint propagation
// (internal/uniq) with local and global SMT queries over the finite field
// (internal/smt).
//
// Verdicts:
//
//   - Safe     — every output signal is uniquely determined by the inputs;
//   - Unsafe   — a checked pair of witnesses agrees on all inputs but
//     differs on an output (the circuit is under-constrained);
//   - Unknown  — neither could be established within budget.
//
// The package also exposes the two baselines the evaluation compares
// against: propagation-only (an Ecne-style pure inference pass, which can
// prove Safe but never produces counterexamples) and SMT-only (a monolithic
// whole-circuit query per output, which is complete in principle but does
// not scale).
package core

import (
	"fmt"
	"time"

	"qed2/internal/r1cs"
	"qed2/internal/smt"
	"qed2/internal/uniq"
)

// Verdict classifies a circuit.
type Verdict int

// Verdicts.
const (
	// VerdictUnknown means the analysis could not decide within budget.
	VerdictUnknown Verdict = iota
	// VerdictSafe means every output is uniquely determined by the inputs.
	VerdictSafe
	// VerdictUnsafe means a checked witness pair demonstrates
	// non-uniqueness of an output.
	VerdictUnsafe
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictUnsafe:
		return "unsafe"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Mode selects the analysis configuration.
type Mode int

// Modes.
const (
	// ModeFull is the QED² combination: propagation + sliced SMT queries +
	// full-circuit confirmation.
	ModeFull Mode = iota
	// ModePropagationOnly runs only the inference rules (Ecne-style
	// baseline): it can prove Safe but never Unsafe.
	ModePropagationOnly
	// ModeSMTOnly issues one monolithic two-copy query per output without
	// any propagation (naive SMT encoding baseline).
	ModeSMTOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "qed2"
	case ModePropagationOnly:
		return "propagation-only"
	case ModeSMTOnly:
		return "smt-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes the analysis.
type Config struct {
	// Mode selects full QED² or one of the baselines. Default ModeFull.
	Mode Mode
	// SliceRadius is the constraint-graph radius of local queries.
	// Default 2.
	SliceRadius int
	// MaxSliceConstraints caps the size of a local query. Default 64.
	MaxSliceConstraints int
	// QuerySteps is the solver budget per SMT query. Default 50000.
	QuerySteps int64
	// GlobalSteps bounds total solver steps across all queries.
	// Default 5,000,000.
	GlobalSteps int64
	// Timeout bounds wall-clock time for the whole analysis (0 = none).
	Timeout time.Duration
	// Seed makes solver probing deterministic.
	Seed int64
	// DisableSolveRule / DisableBitsRule switch off individual propagation
	// rules (rule-ablation experiments). With both set, the analysis still
	// seeds inputs and issues sliced SMT queries.
	DisableSolveRule bool
	DisableBitsRule  bool
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.SliceRadius == 0 {
		out.SliceRadius = 2
	}
	if out.MaxSliceConstraints == 0 {
		out.MaxSliceConstraints = 64
	}
	if out.QuerySteps == 0 {
		out.QuerySteps = 50_000
	}
	if out.GlobalSteps == 0 {
		out.GlobalSteps = 5_000_000
	}
	return out
}

// CounterExample is a checked pair of witnesses demonstrating
// non-uniqueness: both satisfy every constraint, they agree on all inputs,
// and they differ on Signal (an output).
type CounterExample struct {
	W1, W2 r1cs.Witness
	Signal int
}

// Stats aggregates analysis effort and attribution.
type Stats struct {
	// SignalsTotal and Outputs describe the circuit.
	SignalsTotal int
	Outputs      int
	Constraints  int
	// PropagationUnique counts signals proven by the syntactic rules
	// (including re-propagation triggered by SMT facts), with BitsUnique
	// the subset resolved by the binary-decomposition rule.
	PropagationUnique int
	BitsUnique        int
	// SMTUnique counts signals proven by SMT queries.
	SMTUnique int
	// UniqueTotal counts all known-unique signals at the end (seeds
	// included).
	UniqueTotal int
	// Queries and SolverSteps measure SMT effort.
	Queries     int
	SolverSteps int64
	// Duration is wall-clock analysis time.
	Duration time.Duration
}

// Report is the output of Analyze.
type Report struct {
	Verdict Verdict
	// Counter is set iff Verdict == VerdictUnsafe.
	Counter *CounterExample
	// Reason explains Unknown verdicts.
	Reason string
	Stats  Stats
}

// analysis carries the mutable state of one Analyze call.
type analysis struct {
	sys      *r1cs.System
	cfg      Config
	prop     *uniq.Propagator
	report   *Report
	start    time.Time
	stepsRem int64
	querySeq int64
}

// Analyze runs the configured analysis on the system.
func Analyze(sys *r1cs.System, cfg *Config) *Report {
	c := cfg.withDefaults()
	a := &analysis{
		sys:      sys,
		cfg:      c,
		start:    time.Now(),
		stepsRem: c.GlobalSteps,
		report:   &Report{},
	}
	st := sys.Stats()
	a.report.Stats.SignalsTotal = st.Signals
	a.report.Stats.Outputs = st.Outputs
	a.report.Stats.Constraints = st.Constraints

	uopts := uniq.Options{DisableSolve: c.DisableSolveRule, DisableBits: c.DisableBitsRule}
	switch c.Mode {
	case ModePropagationOnly:
		a.prop = uniq.NewWithOptions(sys, uopts)
		a.finishPropagationOnly()
	case ModeSMTOnly:
		a.runSMTOnly()
	default:
		a.prop = uniq.NewWithOptions(sys, uopts)
		a.runFull()
	}
	a.report.Stats.Duration = time.Since(a.start)
	if a.prop != nil {
		counts := a.prop.CountByRule()
		a.report.Stats.PropagationUnique = counts[uniq.RuleSolve] + counts[uniq.RuleBits]
		a.report.Stats.BitsUnique = counts[uniq.RuleBits]
		a.report.Stats.SMTUnique = counts[uniq.RuleExternal]
		a.report.Stats.UniqueTotal = a.prop.NumUnique()
	}
	return a.report
}

// outOfBudget reports whether the global budget is exhausted.
func (a *analysis) outOfBudget() bool {
	if a.stepsRem <= 0 {
		return true
	}
	if a.cfg.Timeout > 0 && time.Since(a.start) > a.cfg.Timeout {
		return true
	}
	return false
}

// solve runs one SMT query against the remaining budget.
func (a *analysis) solve(p *smt.Problem) smt.Outcome {
	budget := a.cfg.QuerySteps
	if budget > a.stepsRem {
		budget = a.stepsRem
	}
	if budget <= 0 {
		return smt.Outcome{Status: smt.StatusUnknown, Reason: "global budget exhausted"}
	}
	a.querySeq++
	out := smt.Solve(p, &smt.Options{
		MaxSteps: budget,
		Seed:     a.cfg.Seed + a.querySeq,
	})
	a.stepsRem -= out.Steps
	a.report.Stats.Queries++
	a.report.Stats.SolverSteps += out.Steps
	return out
}

func (a *analysis) finishPropagationOnly() {
	if a.prop.OutputsUnique() {
		a.report.Verdict = VerdictSafe
		return
	}
	a.report.Verdict = VerdictUnknown
	a.report.Reason = "propagation rules left outputs unresolved (this mode cannot produce counterexamples)"
}

// runFull is the QED² loop: propagate, prove unknowns one slice at a time,
// and confirm candidate counterexamples on the full circuit.
func (a *analysis) runFull() {
	lastTried := map[int]int{}
	for {
		if a.prop.OutputsUnique() {
			a.report.Verdict = VerdictSafe
			return
		}
		if a.outOfBudget() {
			a.report.Verdict = VerdictUnknown
			a.report.Reason = "analysis budget exhausted"
			return
		}
		progress := false
		for _, s := range a.prop.Unknown() {
			if a.outOfBudget() {
				break
			}
			if a.prop.IsUnique(s) {
				continue // resolved by propagation triggered earlier this pass
			}
			if lastTried[s] == a.prop.NumUnique() {
				continue // nothing new since the last attempt
			}
			lastTried[s] = a.prop.NumUnique()
			out, full := a.sliceQuery(s)
			if out.Status == smt.StatusUnsat {
				a.prop.AddUniqueExternal(s)
				progress = true
				continue
			}
			// A SAT answer on the FULL constraint set is conclusive
			// non-uniqueness of s; for outputs that ends the analysis.
			if out.Status == smt.StatusSat && full {
				if a.sys.Signal(s).Kind == r1cs.KindOutput {
					if a.confirmCounterexample(s, out.Model) {
						return
					}
				}
			}
		}
		if progress {
			continue
		}
		// Slices are exhausted: decide the remaining outputs globally.
		a.finalOutputsStage()
		return
	}
}

// sliceQuery builds and solves the local uniqueness query for signal s.
// full reports whether the slice covered the entire system.
func (a *analysis) sliceQuery(s int) (smt.Outcome, bool) {
	sl := a.sys.SliceAround(s, a.cfg.SliceRadius, a.cfg.MaxSliceConstraints)
	p := a.uniquenessProblem(sl.Constraints, s)
	return a.solve(p), len(sl.Constraints) == a.sys.NumConstraints()
}

// finalOutputsStage runs whole-circuit queries for every output still
// unknown, confirming counterexamples or proving uniqueness outright.
func (a *analysis) finalOutputsStage() {
	allCons := make([]int, a.sys.NumConstraints())
	for i := range allCons {
		allCons[i] = i
	}
	var reason string
	for _, o := range a.sys.Outputs() {
		if a.prop.IsUnique(o) {
			continue
		}
		if a.outOfBudget() {
			a.report.Verdict = VerdictUnknown
			a.report.Reason = "analysis budget exhausted before deciding all outputs"
			return
		}
		p := a.uniquenessProblem(allCons, o)
		out := a.solve(p)
		switch out.Status {
		case smt.StatusUnsat:
			a.prop.AddUniqueExternal(o)
		case smt.StatusSat:
			if a.confirmCounterexample(o, out.Model) {
				return
			}
			reason = "solver model failed confirmation (internal)"
		default:
			if reason == "" {
				reason = fmt.Sprintf("output %s undecided: %s", a.sys.Name(o), out.Reason)
			}
		}
	}
	if a.prop.OutputsUnique() {
		a.report.Verdict = VerdictSafe
		return
	}
	a.report.Verdict = VerdictUnknown
	a.report.Reason = reason
}

// runSMTOnly is the monolithic baseline: one full-circuit query per output,
// sharing only the inputs between the two copies.
func (a *analysis) runSMTOnly() {
	shared := map[int]bool{r1cs.OneID: true}
	for _, in := range a.sys.Inputs() {
		shared[in] = true
	}
	allCons := make([]int, a.sys.NumConstraints())
	for i := range allCons {
		allCons[i] = i
	}
	undecided := ""
	safe := true
	for _, o := range a.sys.Outputs() {
		if a.outOfBudget() {
			safe = false
			undecided = "analysis budget exhausted"
			break
		}
		p := buildUniquenessProblem(a.sys, allCons, func(v int) bool { return shared[v] }, o)
		out := a.solve(p)
		switch out.Status {
		case smt.StatusUnsat:
			// output unique
		case smt.StatusSat:
			if a.confirmCounterexample(o, out.Model) {
				return
			}
			safe = false
			undecided = "solver model failed confirmation (internal)"
		default:
			safe = false
			if undecided == "" {
				undecided = fmt.Sprintf("output %s undecided: %s", a.sys.Name(o), out.Reason)
			}
		}
	}
	if safe {
		a.report.Verdict = VerdictSafe
		return
	}
	a.report.Verdict = VerdictUnknown
	a.report.Reason = undecided
}

// uniquenessProblem builds the two-copy query for target over the given
// constraints, sharing every signal currently known unique.
func (a *analysis) uniquenessProblem(consIdx []int, target int) *smt.Problem {
	return buildUniquenessProblem(a.sys, consIdx, a.prop.IsUnique, target)
}

// confirmCounterexample turns a SAT model of a full-circuit query into a
// checked witness pair; it returns true (and finalizes the report) only if
// both witnesses satisfy every constraint, agree on the inputs, and differ
// on the target output.
func (a *analysis) confirmCounterexample(target int, model smt.Model) bool {
	n := a.sys.NumSignals()
	w1 := a.sys.NewWitness()
	w2 := a.sys.NewWitness()
	sharedOf := func(v int) bool {
		if a.prop != nil {
			return a.prop.IsUnique(v)
		}
		return v == r1cs.OneID || a.sys.Signal(v).Kind == r1cs.KindInput
	}
	for id := 1; id < n; id++ {
		w1[id] = model.Eval(id)
		if sharedOf(id) {
			w2[id] = model.Eval(id)
		} else {
			w2[id] = model.Eval(id + n)
		}
	}
	if err := a.sys.CheckWitness(w1); err != nil {
		return false
	}
	if err := a.sys.CheckWitness(w2); err != nil {
		return false
	}
	if !r1cs.AgreeOn(w1, w2, a.sys.Inputs()) {
		return false
	}
	if w1[target].Cmp(w2[target]) == 0 {
		return false
	}
	a.report.Verdict = VerdictUnsafe
	a.report.Counter = &CounterExample{W1: w1, W2: w2, Signal: target}
	return true
}
