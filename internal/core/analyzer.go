// Package core implements the QED² analysis for detecting under-constrained
// arithmetic circuits: given a rank-1 constraint system, it decides for each
// output signal whether the constraints determine it uniquely from the
// inputs, combining lightweight uniqueness-constraint propagation
// (internal/uniq) with local and global SMT queries over the finite field
// (internal/smt).
//
// Verdicts:
//
//   - Safe     — every output signal is uniquely determined by the inputs;
//   - Unsafe   — a checked pair of witnesses agrees on all inputs but
//     differs on an output (the circuit is under-constrained);
//   - Unknown  — neither could be established within budget.
//
// The package also exposes the two baselines the evaluation compares
// against: propagation-only (an Ecne-style pure inference pass, which can
// prove Safe but never produces counterexamples) and SMT-only (a monolithic
// whole-circuit query per output, which is complete in principle but does
// not scale).
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/sa"
	"qed2/internal/smt"
	"qed2/internal/uniq"
)

// Verdict classifies a circuit.
type Verdict int

// Verdicts.
const (
	// VerdictUnknown means the analysis could not decide within budget.
	VerdictUnknown Verdict = iota
	// VerdictSafe means every output is uniquely determined by the inputs.
	VerdictSafe
	// VerdictUnsafe means a checked witness pair demonstrates
	// non-uniqueness of an output.
	VerdictUnsafe
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictSafe:
		return "safe"
	case VerdictUnsafe:
		return "unsafe"
	case VerdictUnknown:
		return "unknown"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// ParseVerdict inverts String for the three canonical verdict names (used
// when rehydrating persisted records, e.g. bench checkpoints).
func ParseVerdict(s string) (Verdict, bool) {
	switch s {
	case "safe":
		return VerdictSafe, true
	case "unsafe":
		return VerdictUnsafe, true
	case "unknown":
		return VerdictUnknown, true
	}
	return VerdictUnknown, false
}

// Mode selects the analysis configuration.
type Mode int

// Modes.
const (
	// ModeFull is the QED² combination: propagation + sliced SMT queries +
	// full-circuit confirmation.
	ModeFull Mode = iota
	// ModePropagationOnly runs only the inference rules (Ecne-style
	// baseline): it can prove Safe but never Unsafe.
	ModePropagationOnly
	// ModeSMTOnly issues one monolithic two-copy query per output without
	// any propagation (naive SMT encoding baseline).
	ModeSMTOnly
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "qed2"
	case ModePropagationOnly:
		return "propagation-only"
	case ModeSMTOnly:
		return "smt-only"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config tunes the analysis.
type Config struct {
	// Mode selects full QED² or one of the baselines. Default ModeFull.
	Mode Mode
	// SliceRadius is the constraint-graph radius of local queries.
	// Default 2.
	SliceRadius int
	// MaxSliceConstraints caps the size of a local query. Default 64.
	MaxSliceConstraints int
	// QuerySteps is the solver budget per SMT query. Default 50000.
	QuerySteps int64
	// GlobalSteps bounds total solver steps across all queries.
	// Default 5,000,000.
	GlobalSteps int64
	// Timeout bounds wall-clock time for the whole analysis (0 = none).
	// The deadline is enforced inside individual solver calls, not just
	// between them, so a single hard query cannot overshoot it by more than
	// one solver step-check interval.
	Timeout time.Duration
	// Workers is the number of slice queries solved concurrently per round.
	// Default GOMAXPROCS. Reports are byte-identical (verdict, stats,
	// counterexample) for any worker count as long as no wall-clock timeout
	// cuts the run short: results are applied at a round barrier in
	// canonical signal order, solver seeds derive from the target signal,
	// and the shared global step budget is reserved deterministically.
	Workers int
	// Seed makes solver probing deterministic.
	Seed int64
	// DisableSolveRule / DisableBitsRule switch off individual propagation
	// rules (rule-ablation experiments). With both set, the analysis still
	// seeds inputs and issues sliced SMT queries.
	DisableSolveRule bool
	DisableBitsRule  bool
	// DisableStatic switches off the static-analysis pre-pass (internal/sa)
	// that otherwise runs before the SMT rounds of ModeFull, pruning,
	// ordering and shrinking the scheduler's queries. The baselines
	// (ModePropagationOnly, ModeSMTOnly) never run the pre-pass so they stay
	// faithful to the systems the paper compares against.
	DisableStatic bool
	// DisableIncremental switches off incremental slice solving: the batch
	// dispatch that groups sibling queries of a round over one shared,
	// pre-propagated base state (batch.go, smt.Session) and the learned-fact
	// store fed from those bases (facts.go). With it set, every query is
	// solved from scratch, exactly as before the incremental engine existed.
	// Verdicts, counterexamples and findings are identical either way (see
	// DESIGN.md §13 and TestIncrementalDifferentialSuite); only the solver
	// effort differs.
	DisableIncremental bool
	// Obs, when non-nil, receives hierarchical spans for every phase of
	// the analysis (rounds, queries, confirmations); ObsParent optionally
	// nests the whole analysis under a caller-owned span (the bench runner
	// uses it for per-instance grouping). Metrics, when non-nil, receives
	// the core.*, uniq.* and smt.* counters and histograms. All three are
	// pure observers: they never change verdicts, stats or determinism
	// (though with Workers > 1 the interleaving of query events in the
	// trace depends on scheduling).
	Obs       *obs.Tracer
	ObsParent *obs.Span
	Metrics   *obs.Metrics
	// Progress, when non-nil, receives coarse milestone events of the
	// analysis: the static pre-pass, each slice-query round barrier, each
	// final-stage round, and a terminal "done" event carrying the verdict.
	// Like Obs/Metrics it is a pure observer — it never changes verdicts,
	// stats or determinism. It is invoked sequentially from the analysis
	// goroutine at round barriers (never from query workers), so it needs no
	// locking of its own, but it must not block: the analysis stalls while
	// the callback runs. qed2d feeds per-job event streams from this hook.
	Progress func(ProgressEvent)
}

// ProgressEvent is one milestone reported through Config.Progress.
type ProgressEvent struct {
	// Phase is "static" (pre-pass finished), "round" (a slice-query round
	// barrier), "final" (a final-outputs-stage round barrier) or "done"
	// (analysis finished; Verdict is set).
	Phase string
	// Round is the 1-based round number within its phase ("round"/"final").
	Round int
	// Tasks is the number of queries dispatched in the reported round.
	Tasks int
	// UniqueTotal/Queries/SolverSteps snapshot the analysis effort so far.
	UniqueTotal int
	Queries     int
	SolverSteps int64
	// Verdict is the final verdict string, set only on "done".
	Verdict string
}

func (c *Config) withDefaults() Config {
	out := Config{}
	if c != nil {
		out = *c
	}
	if out.SliceRadius == 0 {
		out.SliceRadius = 2
	}
	if out.MaxSliceConstraints == 0 {
		out.MaxSliceConstraints = 64
	}
	if out.QuerySteps == 0 {
		out.QuerySteps = 50_000
	}
	if out.GlobalSteps == 0 {
		out.GlobalSteps = 5_000_000
	}
	if out.Workers <= 0 {
		out.Workers = runtime.GOMAXPROCS(0)
	}
	return out
}

// CounterExample is a checked pair of witnesses demonstrating
// non-uniqueness: both satisfy every constraint, they agree on all inputs,
// and they differ on Signal (an output).
type CounterExample struct {
	W1, W2 r1cs.Witness
	Signal int
}

// Stats aggregates analysis effort and attribution.
type Stats struct {
	// SignalsTotal and Outputs describe the circuit.
	SignalsTotal int
	Outputs      int
	Constraints  int
	// PropagationUnique counts signals proven by the syntactic rules
	// (including re-propagation triggered by SMT facts), with BitsUnique
	// the subset resolved by the binary-decomposition rule.
	PropagationUnique int
	BitsUnique        int
	// SMTUnique counts signals proven by SMT queries.
	SMTUnique int
	// UniqueTotal counts all known-unique signals at the end (seeds
	// included).
	UniqueTotal int
	// Queries and SolverSteps measure SMT effort.
	Queries     int
	SolverSteps int64
	// CacheHits counts slice queries answered from the slice-signature memo
	// cache instead of the solver (structurally identical re-queries across
	// re-propagation rounds).
	CacheHits int
	// QueryPanics counts solver queries whose first attempt panicked and was
	// quarantined (converted to Unknown); QueryRetries counts the reduced-
	// budget retries issued for them at the round barrier. A panic can only
	// degrade a verdict to Unknown, never flip it — see DESIGN.md §11.
	QueryPanics  int
	QueryRetries int
	// StaticUnique counts signals the static-analysis pre-pass proved
	// determined by its classic rules (const/solve/bits propagation) beyond
	// what uniqueness propagation derives on its own (provenance
	// RuleStatic); StaticRangeUnique counts those proven only by the range
	// domains (interval/congruence singleton promotion — facts the classic
	// rules cannot derive, see DESIGN.md §17). Their sum is the total
	// number of injected static facts. StaticQueriesAvoided counts slice
	// queries skipped because the pre-pass proved the target lives in a
	// component no output verdict can observe, and StaticRangePruned counts
	// solver queries (the round-1 slice query, plus the final whole-circuit
	// query for outputs) never issued because a range-domain fact had
	// already decided the target's uniqueness. All are zero when the
	// pre-pass is disabled or its replay check failed — see DESIGN.md §12.
	StaticUnique         int
	StaticRangeUnique    int
	StaticQueriesAvoided int
	StaticRangePruned    int
	// Incremental-solving effort attribution (all zero when
	// Config.DisableIncremental is set). BatchGroups counts sibling-query
	// groups that shared one incremental base state; IncrementalReuses
	// counts queries answered as continuations of such a state;
	// IncrementalExtends counts retained bases grown in place by a
	// shared-signal-mask diff instead of being rebuilt;
	// IncrementalFallbacks counts groups whose tasks fell back to
	// from-scratch solving (base poisoned, budget-starved, or crashed);
	// IncrementalBaseSteps counts the solver steps spent preparing shared
	// bases (included in SolverSteps). LearnedFacts counts replay-safe
	// facts recorded from base fixpoints, and FactsInjected counts fact
	// equations added to fallback sibling queries.
	BatchGroups          int
	IncrementalReuses    int
	IncrementalExtends   int
	IncrementalFallbacks int
	IncrementalBaseSteps int64
	LearnedFacts         int
	FactsInjected        int
	// Workers records the degree of query parallelism used.
	Workers int
	// Duration is wall-clock analysis time.
	Duration time.Duration
}

// Degradation classifies an Unknown verdict that is a fault-tolerance
// artifact — the analysis was cut short by cancellation, or an output was
// left undecided by a panic-quarantined query — as opposed to a genuine
// budget outcome. It is machine-readable on purpose: consumers (the bench
// checkpoint, the golden-verdict gate) must never have to parse the
// human-oriented Reason string, which wraps and rephrases the underlying
// cause, to tell the two apart.
type Degradation string

// Degradations.
const (
	// DegradedNone marks a genuine analysis outcome.
	DegradedNone Degradation = ""
	// DegradedCanceled marks a verdict cut short by context cancellation.
	DegradedCanceled Degradation = "canceled"
	// DegradedInternal marks a verdict left undecided by a quarantined
	// query panic (or, in the bench runner, an instance-level panic).
	DegradedInternal Degradation = "internal-error"
	// DegradedHardFault marks a verdict lost to a hard fault of an isolated
	// worker process — an OOM kill, a fatal runtime error, or a watchdog
	// SIGKILL of a wedged or over-limit sandbox child (qed2d -sandbox). The
	// analysis itself never produces this value: it is synthesized by the
	// supervisor that observed the worker die. Like every degradation it is
	// never cacheable and never golden-comparable.
	DegradedHardFault Degradation = "hard-fault"
)

// Report is the output of Analyze.
type Report struct {
	Verdict Verdict
	// Counter is set iff Verdict == VerdictUnsafe.
	Counter *CounterExample
	// Reason explains Unknown verdicts.
	Reason string
	// Degraded is non-empty when an Unknown verdict is an artifact of fault
	// tolerance rather than an exhausted budget; see Degradation. Safe and
	// Unsafe verdicts are never degraded — faults only ever move a verdict
	// toward Unknown.
	Degraded Degradation
	// Static is the static-analysis pre-pass result (lint findings,
	// dependency graph, abstract state); nil when the pre-pass did not run
	// (baselines, DisableStatic). Findings are advisory context — they never
	// decide the Verdict.
	Static *sa.Result
	Stats  Stats
}

// analysis carries the mutable state of one Analyze call. The solver-step
// budget is an atomic because slice queries of one round run on concurrent
// workers, all drawing from the same global pool; everything else is only
// touched sequentially (at round barriers or in the baselines).
type analysis struct {
	sys    *r1cs.System
	cfg    Config
	prop   *uniq.Propagator
	report *Report
	// ctx cancels the analysis (never nil; Background when the caller used
	// plain Analyze). Workers check it between queries; the solver checks it
	// inside the step loop.
	ctx      context.Context
	start    time.Time
	deadline time.Time // zero when cfg.Timeout == 0 and ctx has no deadline
	stepsRem atomic.Int64
	// nPanics/nRetries count quarantined query panics and their barrier
	// retries; atomics because the recover boundary runs on worker
	// goroutines. Folded into Stats at the end of the analysis.
	nPanics  atomic.Int64
	nRetries atomic.Int64
	// cache memoizes query outcomes by slice signature (target, constraint
	// set, shared-signal mask) so re-propagation rounds do not re-solve
	// structurally identical queries. Accessed only at round barriers.
	cache map[string]smt.Outcome
	// sessions retains incremental base states across rounds, keyed by
	// constraint subset (batch.go); facts is the learned-fact store fed
	// from those bases (facts.go). Both are written only at round barriers;
	// workers read sessions through immutable *smt.Session values.
	sessions map[string]*sessionEntry
	facts    *factStore
	// staticPruned marks signals whose slice queries the static pre-pass
	// proved irrelevant to every output verdict (nil when the pass did not
	// run); staticUnreachable lists outputs the reachability analysis wants
	// queried first in the final whole-circuit stage. Both written once
	// before the first round, read-only afterwards.
	staticPruned      map[int]bool
	staticUnreachable []int
	// span is the root "core.analyze" span; the observability handles
	// below are nil-safe no-ops when Config.Obs / Config.Metrics are unset.
	span            *obs.Span
	cRounds         *obs.Counter
	cCacheHits      *obs.Counter
	cCacheMisses    *obs.Counter
	cConfirmAttempt *obs.Counter
	cConfirmOK      *obs.Counter
	cPanics         *obs.Counter
	cRetries        *obs.Counter
	cBatchGroups    *obs.Counter
	cBatchTasks     *obs.Counter
	cIncFallbacks   *obs.Counter
	cFactsInjected  *obs.Counter
	hSliceCons      *obs.Histogram
	hSliceSigs      *obs.Histogram
}

// Analyze runs the configured analysis on the system.
func Analyze(sys *r1cs.System, cfg *Config) *Report {
	return AnalyzeContext(context.Background(), sys, cfg)
}

// AnalyzeContext is Analyze under a context. Cancellation aborts the
// analysis at the next query boundary — and inside running solver calls,
// which poll the context every few solver steps — yielding VerdictUnknown
// with Reason "canceled"; conclusions already established (a Safe proof or
// a confirmed counterexample) are still reported. A ctx deadline is unified
// with Config.Timeout into a single wall-clock bound, so whichever is
// earlier governs the whole analysis.
func AnalyzeContext(ctx context.Context, sys *r1cs.System, cfg *Config) *Report {
	if ctx == nil {
		ctx = context.Background()
	}
	c := cfg.withDefaults()
	a := &analysis{
		sys:      sys,
		cfg:      c,
		ctx:      ctx,
		start:    time.Now(),
		report:   &Report{},
		cache:    map[string]smt.Outcome{},
		sessions: map[string]*sessionEntry{},
		facts:    newFactStore(),
	}
	a.stepsRem.Store(c.GlobalSteps)
	if c.Timeout > 0 {
		a.deadline = a.start.Add(c.Timeout)
	}
	if d, ok := ctx.Deadline(); ok && (a.deadline.IsZero() || d.Before(a.deadline)) {
		a.deadline = d
	}
	st := sys.Stats()
	a.report.Stats.SignalsTotal = st.Signals
	a.report.Stats.Outputs = st.Outputs
	a.report.Stats.Constraints = st.Constraints
	a.report.Stats.Workers = c.Workers

	a.span = c.Obs.Start(c.ObsParent, "core.analyze",
		obs.KV("mode", c.Mode.String()), obs.KV("workers", c.Workers),
		obs.KV("signals", st.Signals), obs.KV("constraints", st.Constraints))
	a.cRounds = c.Metrics.Counter("core.rounds")
	a.cCacheHits = c.Metrics.Counter("core.cache.hits")
	a.cCacheMisses = c.Metrics.Counter("core.cache.misses")
	a.cConfirmAttempt = c.Metrics.Counter("core.confirm.attempts")
	a.cConfirmOK = c.Metrics.Counter("core.confirm.ok")
	a.cPanics = c.Metrics.Counter("core.query.panics")
	a.cRetries = c.Metrics.Counter("core.query.retries")
	a.cBatchGroups = c.Metrics.Counter("core.batch.groups")
	a.cBatchTasks = c.Metrics.Counter("core.batch.grouped_tasks")
	a.cIncFallbacks = c.Metrics.Counter("core.batch.fallbacks")
	a.cFactsInjected = c.Metrics.Counter("core.facts.injected")
	a.hSliceCons = c.Metrics.Histogram("core.slice.constraints")
	a.hSliceSigs = c.Metrics.Histogram("core.slice.signals")

	uopts := uniq.Options{DisableSolve: c.DisableSolveRule, DisableBits: c.DisableBitsRule, Metrics: c.Metrics}
	switch c.Mode {
	case ModePropagationOnly:
		a.prop = uniq.NewWithOptions(sys, uopts)
		a.finishPropagationOnly()
	case ModeSMTOnly:
		a.runSMTOnly()
	default:
		a.prop = uniq.NewWithOptions(sys, uopts)
		// Rule-ablation configs suppress the pre-pass too: its abstract
		// interpretation re-derives the same rule classes (D-Solve ≈ R-Solve,
		// D-Bits ≈ R-Bits), so leaving it on would quietly undo the ablation.
		if !c.DisableStatic && !c.DisableSolveRule && !c.DisableBitsRule {
			a.runStaticPrePass()
			a.emitProgress("static", 0, 0, "")
		}
		a.runFull()
	}
	// Cancellation wins over whatever reason wording the loops assembled: an
	// Unknown verdict out of a canceled analysis is a degradation artifact
	// (re-running may well decide it), no matter which undecided output or
	// budget phrase was captured first.
	if a.report.Verdict == VerdictUnknown && a.ctx.Err() != nil {
		a.report.Degraded = DegradedCanceled
	}
	a.report.Stats.Duration = time.Since(a.start)
	a.report.Stats.QueryPanics = int(a.nPanics.Load())
	a.report.Stats.QueryRetries = int(a.nRetries.Load())
	if a.prop != nil {
		counts := a.prop.CountByRule()
		a.report.Stats.PropagationUnique = counts[uniq.RuleSolve] + counts[uniq.RuleBits]
		a.report.Stats.BitsUnique = counts[uniq.RuleBits]
		a.report.Stats.SMTUnique = counts[uniq.RuleExternal]
		a.report.Stats.UniqueTotal = a.prop.NumUnique()
	}
	a.span.End(
		obs.KV("verdict", a.report.Verdict.String()),
		obs.KV("queries", a.report.Stats.Queries),
		obs.KV("cache_hits", a.report.Stats.CacheHits),
		obs.KV("solver_steps", a.report.Stats.SolverSteps),
		obs.KV("unique_total", a.report.Stats.UniqueTotal))
	a.emitProgress("done", 0, 0, a.report.Verdict.String())
	return a.report
}

// emitProgress reports one milestone through Config.Progress (no-op when
// the hook is unset). Only called from the sequential analysis goroutine.
func (a *analysis) emitProgress(phase string, round, tasks int, verdict string) {
	if a.cfg.Progress == nil {
		return
	}
	ev := ProgressEvent{
		Phase:       phase,
		Round:       round,
		Tasks:       tasks,
		Queries:     a.report.Stats.Queries,
		SolverSteps: a.report.Stats.SolverSteps,
		Verdict:     verdict,
	}
	if a.prop != nil {
		ev.UniqueTotal = a.prop.NumUnique()
	}
	a.cfg.Progress(ev)
}

// outOfBudget reports whether the analysis must stop: global step budget
// exhausted, wall-clock deadline passed, or context canceled.
func (a *analysis) outOfBudget() bool {
	if a.stepsRem.Load() <= 0 {
		return true
	}
	if !a.deadline.IsZero() && !time.Now().Before(a.deadline) {
		return true
	}
	return a.ctx.Err() != nil
}

// stopReason attributes an abort for the Unknown report: cancellation wins
// over the budget wording so callers (and the golden-diff gate) can tell a
// Ctrl-C apart from a genuinely exhausted budget.
func (a *analysis) stopReason(budgetReason string) string {
	if a.ctx.Err() != nil {
		return smt.Canceled
	}
	return budgetReason
}

// reserve atomically takes up to QuerySteps from the remaining global
// budget, returning the granted step budget (0 when exhausted). Unused
// steps are returned with refund, so budget accounting is exact and — since
// reservations happen sequentially in canonical signal order at round
// dispatch — deterministic regardless of worker count.
func (a *analysis) reserve() int64 { return a.reserveN(a.cfg.QuerySteps) }

// reserveN is reserve with an explicit grant ceiling (the quarantine retry
// path asks for a reduced budget).
func (a *analysis) reserveN(want int64) int64 {
	for {
		rem := a.stepsRem.Load()
		if rem <= 0 {
			return 0
		}
		grant := want
		if grant > rem {
			grant = rem
		}
		if a.stepsRem.CompareAndSwap(rem, rem-grant) {
			return grant
		}
	}
}

// refund returns unused reserved steps to the global pool. n may be
// negative (a query's final step check can overshoot its grant by one).
func (a *analysis) refund(n int64) { a.stepsRem.Add(n) }

// solveSeq runs one SMT query synchronously against the global budget (the
// sequential path used by the monolithic baseline), with the same panic
// isolation and degrade-and-retry policy as the parallel slice path.
func (a *analysis) solveSeq(p *smt.Problem, target int) smt.Outcome {
	grant := a.reserve()
	if grant <= 0 {
		return smt.Outcome{Status: smt.StatusUnknown, Reason: "global budget exhausted"}
	}
	build := func() *smt.Problem { return p }
	out, panicked := a.runQuery(build, target, len(p.Eqs)/2, true, grant, a.querySeed(target))
	a.refund(grant - out.Steps)
	if panicked {
		out = a.retryOnce(build, target, len(p.Eqs)/2, true, out)
	}
	a.report.Stats.Queries++
	a.report.Stats.SolverSteps += out.Steps
	return out
}

func (a *analysis) finishPropagationOnly() {
	if a.prop.OutputsUnique() {
		a.report.Verdict = VerdictSafe
		return
	}
	a.report.Verdict = VerdictUnknown
	a.report.Reason = "propagation rules left outputs unresolved (this mode cannot produce counterexamples)"
}

// runFull is the QED² loop: propagate, prove unknowns one round of slice
// queries at a time, and confirm candidate counterexamples on the full
// circuit. Each round snapshots the unique set, dispatches the queries for
// every still-unknown signal to the worker pool, and applies the results at
// a barrier in canonical signal order, so the outcome is independent of the
// worker count and of which query finishes first.
func (a *analysis) runFull() {
	a.sys.PrepareConcurrent()
	lastTried := map[int]int{}
	round := 0
	for {
		if a.prop.OutputsUnique() {
			a.report.Verdict = VerdictSafe
			return
		}
		if a.outOfBudget() {
			a.report.Verdict = VerdictUnknown
			a.report.Reason = a.stopReason("analysis budget exhausted")
			return
		}
		snap := a.prop.Snapshot()
		var tasks []*queryTask
		for _, s := range a.prop.Unknown() {
			if a.skipPruned(s) {
				continue // no output verdict can observe this signal
			}
			if lastTried[s] == snap.NumUnique() {
				continue // nothing new since the last attempt
			}
			lastTried[s] = snap.NumUnique()
			sl := a.sys.SliceAround(s, a.cfg.SliceRadius, a.cfg.MaxSliceConstraints)
			t := &queryTask{
				sig:  s,
				cons: sl.Constraints,
				full: len(sl.Constraints) == a.sys.NumConstraints(),
			}
			a.admit(t, sl.Signals, snap)
			tasks = append(tasks, t)
		}
		if len(tasks) == 0 {
			a.finalOutputsStage()
			return
		}
		round++
		a.cRounds.Inc()
		rs := a.cfg.Obs.Start(a.span, "core.round",
			obs.KV("round", round), obs.KV("tasks", len(tasks)))
		a.runRound(tasks, snap)
		before := a.prop.NumUnique()
		for _, t := range tasks {
			a.accountTask(t)
			if t.out.Status == smt.StatusUnsat {
				a.prop.AddUniqueExternal(t.sig)
				continue
			}
			// A SAT answer on the FULL constraint set is conclusive
			// non-uniqueness of t.sig; for outputs that ends the analysis.
			if t.out.Status == smt.StatusSat && t.full {
				if a.sys.Signal(t.sig).Kind == r1cs.KindOutput {
					if a.confirmCounterexample(t.sig, t.out.Model) {
						rs.End(obs.KV("new_unique", a.prop.NumUnique()-before), obs.KV("confirmed", true))
						return
					}
				}
			}
		}
		rs.End(obs.KV("new_unique", a.prop.NumUnique()-before))
		a.emitProgress("round", round, len(tasks), "")
		if a.prop.NumUnique() == before {
			// Slices are exhausted: decide the remaining outputs globally.
			a.finalOutputsStage()
			return
		}
	}
}

// finalOutputsStage runs whole-circuit queries for every output still
// unknown, confirming counterexamples or proving uniqueness outright. Like
// the slice loop it proceeds in rounds: outputs proven unique in one round
// enlarge the shared set, which can make the remaining outputs' queries
// tractable in the next.
func (a *analysis) finalOutputsStage() {
	fs := a.cfg.Obs.Start(a.span, "core.final_outputs")
	defer func() { fs.End(obs.KV("verdict", a.report.Verdict.String())) }()
	a.sys.PrepareConcurrent()
	allCons := make([]int, a.sys.NumConstraints())
	for i := range allCons {
		allCons[i] = i
	}
	allSigs := make([]int, a.sys.NumSignals())
	for i := range allSigs {
		allSigs[i] = i
	}
	lastTried := map[int]int{}
	var reason string
	var degraded Degradation
	round := 0
	for {
		if a.prop.OutputsUnique() {
			a.report.Verdict = VerdictSafe
			return
		}
		snap := a.prop.Snapshot()
		var tasks []*queryTask
		for _, o := range a.orderFinalOutputs() {
			if snap.IsUnique(o) {
				continue
			}
			if lastTried[o] == snap.NumUnique() {
				continue
			}
			lastTried[o] = snap.NumUnique()
			t := &queryTask{sig: o, cons: allCons, full: true}
			a.admit(t, allSigs, snap)
			tasks = append(tasks, t)
		}
		if len(tasks) == 0 {
			break
		}
		if a.outOfBudget() {
			a.report.Verdict = VerdictUnknown
			a.report.Reason = a.stopReason("analysis budget exhausted before deciding all outputs")
			return
		}
		round++
		a.runRound(tasks, snap)
		before := a.prop.NumUnique()
		for _, t := range tasks {
			a.accountTask(t)
			switch t.out.Status {
			case smt.StatusUnsat:
				a.prop.AddUniqueExternal(t.sig)
			case smt.StatusSat:
				if a.confirmCounterexample(t.sig, t.out.Model) {
					return
				}
				// Deterministic internal inconsistency, not a transient
				// fault: re-running reproduces it, so it is not degraded.
				reason = "solver model failed confirmation (internal)"
				degraded = DegradedNone
			default:
				if reason == "" {
					reason = fmt.Sprintf("output %s undecided: %s", a.sys.Name(t.sig), t.out.Reason)
					degraded = outcomeDegradation(t.out)
				}
			}
		}
		a.emitProgress("final", round, len(tasks), "")
		if a.prop.NumUnique() == before {
			break
		}
	}
	if a.prop.OutputsUnique() {
		a.report.Verdict = VerdictSafe
		return
	}
	a.report.Verdict = VerdictUnknown
	if reason == "" {
		reason = "outputs undecided"
	}
	a.report.Reason = reason
	a.report.Degraded = degraded
}

// runSMTOnly is the monolithic baseline: one full-circuit query per output,
// sharing only the inputs between the two copies.
func (a *analysis) runSMTOnly() {
	shared := map[int]bool{r1cs.OneID: true}
	for _, in := range a.sys.Inputs() {
		shared[in] = true
	}
	allCons := make([]int, a.sys.NumConstraints())
	for i := range allCons {
		allCons[i] = i
	}
	undecided := ""
	var degraded Degradation
	safe := true
	for _, o := range a.sys.Outputs() {
		if a.outOfBudget() {
			safe = false
			undecided = a.stopReason("analysis budget exhausted")
			// Keep the flag paired with the reason; the ctx-canceled case is
			// restored by AnalyzeContext's cancellation-wins classification.
			degraded = DegradedNone
			break
		}
		p := buildUniquenessProblem(a.sys, allCons, func(v int) bool { return shared[v] }, o)
		out := a.solveSeq(p, o)
		switch out.Status {
		case smt.StatusUnsat:
			// output unique
		case smt.StatusSat:
			if a.confirmCounterexample(o, out.Model) {
				return
			}
			safe = false
			undecided = "solver model failed confirmation (internal)"
			degraded = DegradedNone
		default:
			safe = false
			if undecided == "" {
				undecided = fmt.Sprintf("output %s undecided: %s", a.sys.Name(o), out.Reason)
				degraded = outcomeDegradation(out)
			}
		}
	}
	if safe {
		a.report.Verdict = VerdictSafe
		return
	}
	a.report.Verdict = VerdictUnknown
	a.report.Reason = undecided
	a.report.Degraded = degraded
}

// confirmCounterexample turns a SAT model of a full-circuit query into a
// checked witness pair; it returns true (and finalizes the report) only if
// both witnesses satisfy every constraint, agree on the inputs, and differ
// on the target output.
func (a *analysis) confirmCounterexample(target int, model smt.Model) bool {
	a.cConfirmAttempt.Inc()
	cs := a.cfg.Obs.Start(a.span, "core.confirm", obs.KV("sig", target))
	ok := a.confirmWitnessPair(target, model)
	if ok {
		a.cConfirmOK.Inc()
	}
	cs.End(obs.KV("ok", ok))
	return ok
}

// confirmWitnessPair does the checking behind confirmCounterexample.
func (a *analysis) confirmWitnessPair(target int, model smt.Model) bool {
	n := a.sys.NumSignals()
	w1 := a.sys.NewWitness()
	w2 := a.sys.NewWitness()
	sharedOf := func(v int) bool {
		if a.prop != nil {
			return a.prop.IsUnique(v)
		}
		return v == r1cs.OneID || a.sys.Signal(v).Kind == r1cs.KindInput
	}
	for id := 1; id < n; id++ {
		w1[id] = model.Eval(id)
		if sharedOf(id) {
			w2[id] = model.Eval(id)
		} else {
			w2[id] = model.Eval(id + n)
		}
	}
	if err := a.sys.CheckWitness(w1); err != nil {
		return false
	}
	if err := a.sys.CheckWitness(w2); err != nil {
		return false
	}
	if !r1cs.AgreeOn(w1, w2, a.sys.Inputs()) {
		return false
	}
	if w1[target] == w2[target] {
		return false
	}
	a.report.Verdict = VerdictUnsafe
	a.report.Counter = &CounterExample{W1: w1, W2: w2, Signal: target}
	return true
}
