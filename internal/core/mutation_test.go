package core

import (
	"math/big"
	"math/rand"
	"testing"

	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

// TestMutationNeverFlipsToUnsoundSafe is the failure-injection test from
// DESIGN.md: start from small circuits the analyzer proves Safe, knock out
// one constraint at a time, and verify that whenever the analyzer still
// says Safe the mutated circuit really is output-unique (checked by
// exhaustive enumeration over a tiny field). Dropping a constraint can
// legitimately leave a circuit safe — what must never happen is a Safe
// verdict on a circuit that now admits a forged witness.
func TestMutationNeverFlipsToUnsoundSafe(t *testing.T) {
	f5 := ff.MustField(big.NewInt(5))
	rng := rand.New(rand.NewSource(99))

	build := func() *r1cs.System {
		sys := r1cs.NewSystem(f5)
		sys.AddSignal("", r1cs.KindInput)
		sys.AddSignal("", r1cs.KindInternal)
		sys.AddSignal("", r1cs.KindOutput)
		n := sys.NumSignals()
		randLC := func() *poly.LinComb {
			out := poly.ConstInt(f5, int64(rng.Intn(5)))
			for v := 1; v < n; v++ {
				if rng.Intn(2) == 0 {
					out = out.AddTerm(v, f5.NewElement(int64(1+rng.Intn(4))))
				}
			}
			return out
		}
		for k := 2 + rng.Intn(2); k > 0; k-- {
			sys.AddConstraint(randLC(), randLC(), randLC(), "")
		}
		return sys
	}

	// dropConstraint rebuilds the system without constraint k.
	dropConstraint := func(sys *r1cs.System, k int) *r1cs.System {
		out := r1cs.NewSystem(sys.Field())
		for _, sig := range sys.Signals()[1:] {
			out.AddSignal(sig.Name, sig.Kind)
		}
		for i, c := range sys.Constraints() {
			if i == k {
				continue
			}
			out.AddConstraint(c.A, c.B, c.C, c.Tag)
		}
		return out
	}

	checked, mutants := 0, 0
	for iter := 0; iter < 200 && checked < 25; iter++ {
		sys := build()
		base := Analyze(sys, &Config{Seed: int64(iter)})
		if base.Verdict != VerdictSafe {
			continue
		}
		checked++
		for k := 0; k < sys.NumConstraints(); k++ {
			mutants++
			mut := dropConstraint(sys, k)
			r := Analyze(mut, &Config{Seed: int64(iter*100 + k)})
			gotUnique, _ := outputsUniqueBrute(mut)
			switch r.Verdict {
			case VerdictSafe:
				if !gotUnique {
					t.Fatalf("UNSOUND: dropping constraint %d kept Safe verdict on a forgeable circuit\n%s",
						k, mut.MarshalText())
				}
			case VerdictUnsafe:
				if gotUnique {
					t.Fatalf("UNSOUND: mutant flagged Unsafe but outputs are unique\n%s", mut.MarshalText())
				}
			}
		}
	}
	if checked < 10 {
		t.Fatalf("only %d safe base circuits generated; mutation test too weak", checked)
	}
	t.Logf("mutation test: %d safe bases, %d mutants, all verdicts sound", checked, mutants)
}
