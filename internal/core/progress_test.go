package core

import (
	"reflect"
	"testing"
)

// TestProgressHookMilestones checks the Config.Progress contract on a
// circuit that needs SMT rounds: events arrive in phase order, the terminal
// event carries the verdict, and snapshots are monotone.
func TestProgressHookMilestones(t *testing.T) {
	p := compile(t, isZeroSafe)
	var events []ProgressEvent
	cfg := &Config{Progress: func(ev ProgressEvent) { events = append(events, ev) }}
	r := Analyze(p.System, cfg)
	if r.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v (%s)", r.Verdict, r.Reason)
	}
	if len(events) < 2 {
		t.Fatalf("got %d progress events, want at least static/round + done", len(events))
	}
	last := events[len(events)-1]
	if last.Phase != "done" || last.Verdict != "safe" {
		t.Fatalf("terminal event = %+v, want done/safe", last)
	}
	sawRound := false
	var prevSteps int64
	for i, ev := range events {
		switch ev.Phase {
		case "static", "round", "final":
			if ev.Verdict != "" {
				t.Errorf("event %d (%s) carries a verdict %q", i, ev.Phase, ev.Verdict)
			}
		case "done":
			if i != len(events)-1 {
				t.Errorf("done event at index %d of %d", i, len(events))
			}
		default:
			t.Errorf("unknown phase %q", ev.Phase)
		}
		if ev.Phase == "round" || ev.Phase == "final" {
			sawRound = true
			if ev.Round < 1 || ev.Tasks < 1 {
				t.Errorf("event %d: round=%d tasks=%d", i, ev.Round, ev.Tasks)
			}
		}
		if ev.SolverSteps < prevSteps {
			t.Errorf("event %d: solver steps went backwards %d -> %d", i, prevSteps, ev.SolverSteps)
		}
		prevSteps = ev.SolverSteps
	}
	if !sawRound {
		t.Error("no round-barrier events for a circuit that needs SMT queries")
	}
	if last.UniqueTotal != r.Stats.UniqueTotal {
		t.Errorf("done event UniqueTotal = %d, report says %d", last.UniqueTotal, r.Stats.UniqueTotal)
	}
	if last.Queries != r.Stats.Queries || last.SolverSteps != r.Stats.SolverSteps {
		t.Errorf("done event effort (%d, %d) != report (%d, %d)",
			last.Queries, last.SolverSteps, r.Stats.Queries, r.Stats.SolverSteps)
	}
}

// TestProgressHookIsPureObserver pins that attaching the hook changes
// nothing about the analysis: verdict, reason and stats are identical with
// and without it, for any worker count.
func TestProgressHookIsPureObserver(t *testing.T) {
	p := compile(t, isZeroBuggy)
	base := Analyze(p.System, &Config{Workers: 1, Seed: 1})
	for _, workers := range []int{1, 8} {
		hooked := Analyze(p.System, &Config{
			Workers:  workers,
			Seed:     1,
			Progress: func(ProgressEvent) {},
		})
		base.Stats.Duration, hooked.Stats.Duration = 0, 0
		base.Stats.Workers, hooked.Stats.Workers = 0, 0
		if hooked.Verdict != base.Verdict || hooked.Reason != base.Reason {
			t.Fatalf("workers=%d: verdict changed under Progress hook: %v/%q vs %v/%q",
				workers, hooked.Verdict, hooked.Reason, base.Verdict, base.Reason)
		}
		if !reflect.DeepEqual(hooked.Stats, base.Stats) {
			t.Fatalf("workers=%d: stats changed under Progress hook:\n%+v\nvs\n%+v", workers, hooked.Stats, base.Stats)
		}
	}
}

// TestProgressHookFiresOnBaselines covers the modes without rounds: the
// done event must still arrive.
func TestProgressHookFiresOnBaselines(t *testing.T) {
	p := compile(t, isZeroSafe)
	for _, mode := range []Mode{ModePropagationOnly, ModeSMTOnly} {
		var events []ProgressEvent
		Analyze(p.System, &Config{Mode: mode, Progress: func(ev ProgressEvent) { events = append(events, ev) }})
		if len(events) == 0 || events[len(events)-1].Phase != "done" {
			t.Errorf("mode %v: missing terminal done event (got %v)", mode, events)
		}
	}
}
