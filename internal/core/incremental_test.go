package core

import (
	"context"
	"math/big"
	"reflect"
	"testing"

	"qed2/internal/faultinject"
	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
	"qed2/internal/smt"
)

// TestCacheDoesNotReplayResourceLimitedUnknowns is the regression test for
// the memo-cache policy: an Unknown produced by a resource limit (step
// budget, deadline, cancellation, injected fault) describes the grant it
// ran under, not the problem, so it must never be replayed — otherwise a
// budget-starved first query would poison every well-funded re-query of
// the same slice signature. Deterministic unknowns and decided outcomes
// stay cacheable.
func TestCacheDoesNotReplayResourceLimitedUnknowns(t *testing.T) {
	limited := smt.Outcome{Status: smt.StatusUnknown, Reason: "step budget exhausted", ResourceLimited: true}
	deterministic := smt.Outcome{Status: smt.StatusUnknown, Reason: "incomplete enumeration"}
	quarantined := smt.Outcome{Status: smt.StatusUnknown, Reason: "internal error: recovered panic"}
	for _, tc := range []struct {
		name string
		out  smt.Outcome
		want bool
	}{
		{"sat", smt.Outcome{Status: smt.StatusSat}, true},
		{"unsat", smt.Outcome{Status: smt.StatusUnsat}, true},
		{"resource-limited unknown", limited, false},
		{"deterministic unknown", deterministic, true},
		{"quarantined unknown", quarantined, false},
	} {
		if got := cacheable(tc.out); got != tc.want {
			t.Errorf("cacheable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}

	// End to end through admit/accountTask: a resource-limited unknown is
	// not retained, so the re-admitted identical slice misses the cache and
	// gets a fresh grant; a deterministic unknown is retained and replayed.
	p := compile(t, isZeroBuggy)
	a := newTestAnalysis(p.System, Config{}, context.Background(), nil)
	snap := a.prop.Snapshot()

	task := admitTasks(a, snap)[0]
	if task.cached || task.key == "" {
		t.Fatalf("first admit: cached=%v key=%q", task.cached, task.key)
	}
	task.ran = true
	task.out = limited
	a.accountTask(task)
	if len(a.cache) != 0 {
		t.Fatalf("resource-limited unknown was cached: %v", a.cache)
	}
	retry := admitTasks(a, snap)[0]
	if retry.cached {
		t.Fatal("re-query of a budget-starved slice was answered from the cache")
	}

	retry.ran = true
	retry.out = deterministic
	a.accountTask(retry)
	if len(a.cache) != 1 {
		t.Fatalf("deterministic unknown not cached: %v", a.cache)
	}
	replay := admitTasks(a, snap)[0]
	if !replay.cached || replay.out.Reason != deterministic.Reason {
		t.Fatalf("deterministic unknown not replayed: cached=%v out=%+v", replay.cached, replay.out)
	}
}

// TestCacheKeysIsomorphicDisjointSlices pins the satellite audit of the
// cache-hit path: cached outcomes are replayed verbatim, models included,
// with no variable remapping. That is sound only because the slice
// signature pins the target signal ID — two structurally isomorphic slices
// over disjoint signal ranges (the same gadget instantiated twice) must
// therefore get different keys.
func TestCacheKeysIsomorphicDisjointSlices(t *testing.T) {
	f97 := ff.MustField(big.NewInt(97))
	sys := r1cs.NewSystem(f97)
	c := sys.AddSignal("c", r1cs.KindInput)
	d := sys.AddSignal("d", r1cs.KindInput)
	x := sys.AddSignal("x", r1cs.KindOutput)
	y := sys.AddSignal("y", r1cs.KindOutput)
	// Two disjoint, structurally identical gadgets: x² = c and y² = d.
	sys.AddConstraint(poly.Var(f97, x), poly.Var(f97, x), poly.Var(f97, c), "")
	sys.AddConstraint(poly.Var(f97, y), poly.Var(f97, y), poly.Var(f97, d), "")

	a := newTestAnalysis(sys, Config{}, context.Background(), nil)
	snap := a.prop.Snapshot()
	slX := sys.SliceAround(x, a.cfg.SliceRadius, a.cfg.MaxSliceConstraints)
	slY := sys.SliceAround(y, a.cfg.SliceRadius, a.cfg.MaxSliceConstraints)
	keyX := sliceKey(x, slX.Constraints, slX.Signals, snap)
	keyY := sliceKey(y, slY.Constraints, slY.Signals, snap)
	if keyX == keyY {
		t.Fatalf("isomorphic disjoint slices share a cache key %q — a cached model would be replayed across signal ranges", keyX)
	}
	if len(slX.Constraints) != len(slY.Constraints) || len(slX.Signals) != len(slY.Signals) {
		t.Fatalf("test premise broken: slices are not isomorphic (%d/%d cons, %d/%d sigs)",
			len(slX.Constraints), len(slY.Constraints), len(slX.Signals), len(slY.Signals))
	}

	// The full analysis must flag the square gadgets (x and −x share c=x²)
	// with a counterexample that is valid on its own signal range.
	r := Analyze(sys, &Config{Seed: 1})
	if r.Verdict != VerdictUnsafe || r.Counter == nil {
		t.Fatalf("verdict = %v (%s)", r.Verdict, r.Reason)
	}
	if err := sys.CheckWitness(r.Counter.W1); err != nil {
		t.Errorf("W1 invalid: %v", err)
	}
	if err := sys.CheckWitness(r.Counter.W2); err != nil {
		t.Errorf("W2 invalid: %v", err)
	}
	if r.Counter.W1[r.Counter.Signal] == r.Counter.W2[r.Counter.Signal] {
		t.Error("counterexample witnesses agree on the flagged signal")
	}
}

// TestAnalysisSurvivesInjectedIncrementalFaults drives the whole analysis
// with the "smt.incremental" chaos site firing on every session build:
// every batch group must fall back to from-scratch solving and the verdict,
// counterexample included, must be identical to an uninjected run.
func TestAnalysisSurvivesInjectedIncrementalFaults(t *testing.T) {
	p := compile(t, decoderBuggy)
	clean := Analyze(p.System, &Config{Seed: 1, Workers: 1})
	if clean.Stats.BatchGroups == 0 {
		t.Fatalf("clean run formed no batch groups; stats = %+v", clean.Stats)
	}

	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "smt.incremental", Kind: faultinject.KindError, Every: 1, Msg: "injected session fault"},
	}})
	chaos := Analyze(p.System, &Config{Seed: 1, Workers: 1})
	faultinject.Disable()

	if chaos.Stats.IncrementalFallbacks == 0 {
		t.Fatalf("no fallbacks under every-hit injection; stats = %+v", chaos.Stats)
	}
	if chaos.Stats.BatchGroups != 0 || chaos.Stats.IncrementalReuses != 0 {
		t.Fatalf("poisoned sessions still answered queries; stats = %+v", chaos.Stats)
	}
	if chaos.Verdict != clean.Verdict || chaos.Reason != clean.Reason {
		t.Fatalf("verdict drifted under injection: (%v, %q) vs (%v, %q)",
			chaos.Verdict, chaos.Reason, clean.Verdict, clean.Reason)
	}
	if !reflect.DeepEqual(chaos.Counter, clean.Counter) {
		t.Fatalf("counterexample drifted under injection:\nchaos %+v\nclean %+v", chaos.Counter, clean.Counter)
	}
}

// TestIncrementalDeterminismAcrossWorkers checks that batch dispatch keeps
// the analysis deterministic in the worker count: grants are reserved and
// results folded in canonical order regardless of scheduling.
func TestIncrementalDeterminismAcrossWorkers(t *testing.T) {
	p := compile(t, decoderBuggy)
	r1 := Analyze(p.System, &Config{Seed: 7, Workers: 1})
	r8 := Analyze(p.System, &Config{Seed: 7, Workers: 8})
	if r1.Verdict != r8.Verdict || r1.Reason != r8.Reason {
		t.Fatalf("verdict differs: (%v, %q) vs (%v, %q)", r1.Verdict, r1.Reason, r8.Verdict, r8.Reason)
	}
	if !reflect.DeepEqual(r1.Counter, r8.Counter) {
		t.Fatalf("counterexample differs:\nworkers=1 %+v\nworkers=8 %+v", r1.Counter, r8.Counter)
	}
	s1, s8 := r1.Stats, r8.Stats
	s1.Workers, s8.Workers = 0, 0
	s1.Duration, s8.Duration = 0, 0
	if !reflect.DeepEqual(s1, s8) {
		t.Fatalf("stats differ:\nworkers=1 %+v\nworkers=8 %+v", s1, s8)
	}
}

// TestIncrementalDisabledMatchesEnabled is the fast differential check over
// a few representative circuits (the full-suite version lives in
// internal/bench as TestIncrementalDifferentialSuite): with and without
// incremental solving the verdict, reason and counterexample must be
// byte-identical, and the enabled run must actually exercise reuse.
func TestIncrementalDisabledMatchesEnabled(t *testing.T) {
	reused := 0
	for _, src := range []string{isZeroSafe, isZeroBuggy, decoderBuggy} {
		p := compile(t, src)
		on := Analyze(p.System, &Config{Seed: 1, Workers: 1})
		off := Analyze(p.System, &Config{Seed: 1, Workers: 1, DisableIncremental: true})
		if on.Verdict != off.Verdict || on.Reason != off.Reason {
			t.Errorf("verdict differs: enabled (%v, %q), disabled (%v, %q)",
				on.Verdict, on.Reason, off.Verdict, off.Reason)
		}
		if !reflect.DeepEqual(on.Counter, off.Counter) {
			t.Errorf("counterexample differs:\nenabled %+v\ndisabled %+v", on.Counter, off.Counter)
		}
		if on.Stats.Queries != off.Stats.Queries || on.Stats.CacheHits != off.Stats.CacheHits {
			t.Errorf("query accounting differs: enabled %d/%d, disabled %d/%d",
				on.Stats.Queries, on.Stats.CacheHits, off.Stats.Queries, off.Stats.CacheHits)
		}
		if off.Stats.BatchGroups != 0 || off.Stats.IncrementalReuses != 0 || off.Stats.IncrementalFallbacks != 0 {
			t.Errorf("disabled run touched incremental machinery: %+v", off.Stats)
		}
		reused += on.Stats.IncrementalReuses
	}
	if reused == 0 {
		t.Error("no circuit exercised incremental reuse — differential check is vacuous")
	}
}
