package core

// The learned-fact store.
//
// When a batch group's base state reaches its propagation fixpoint, every
// substitution it derived — target variable := linear expression over the
// remaining variables — is a *universal consequence* of the base
// constraints: it holds in every solution of C(x) ∧ C(x′) under that
// shared-signal mask, independent of any target disequality. Such facts
// are replay-safe in two directions:
//
//   - into sibling queries over the SAME slice that cannot use the shared
//     session (fallback after a poisoned or budget-starved base): adding
//     the fact as a linear equation prunes the search without changing the
//     solution set;
//   - under a GROWN mask: sharing more signals only adds constraints, so a
//     consequence of the smaller system remains one of the larger. The
//     converse does not hold, which is why lookup requires the recorded
//     mask to be covered by the requesting mask.
//
// Facts are never injected into full-circuit queries: those produce the
// counterexample models the report prints, and extra (redundant) equations
// can steer the solver to a different — equally valid but not
// byte-identical — model. Slice queries only contribute verdicts, where
// solution-set equality is all that matters. See DESIGN §13.

import (
	"qed2/internal/poly"
	"qed2/internal/smt"
	"qed2/internal/uniq"
)

// factEntry is the recorded fixpoint knowledge for one constraint subset.
type factEntry struct {
	mask  string
	facts []smt.Fact
}

// factStore maps constraint-subset keys to their latest recorded facts.
type factStore struct {
	byCons map[string]factEntry
}

func newFactStore() *factStore {
	return &factStore{byCons: map[string]factEntry{}}
}

// record stores the facts derived for (consKey, mask), superseding any
// earlier entry (masks only grow, so later entries subsume earlier ones
// for every future lookup). Returns how many facts were recorded.
func (s *factStore) record(consKey, mask string, facts []smt.Fact) int {
	if len(facts) == 0 {
		return 0
	}
	s.byCons[consKey] = factEntry{mask: mask, facts: facts}
	return len(facts)
}

// lookup returns the facts recorded for consKey provided they were derived
// under a mask covered by (sharing no more than) the requesting mask.
func (s *factStore) lookup(consKey, mask string) []smt.Fact {
	e, ok := s.byCons[consKey]
	if !ok {
		return nil
	}
	if e.mask != mask && !maskGrew(e.mask, mask) {
		return nil
	}
	return e.facts
}

// injectFacts adds the recorded facts for the task's slice to a
// from-scratch fallback problem as linear equations, returning how many
// were added. Facts recorded under an older (smaller) mask may mention
// primed copies v+n of signals that are shared now; those variables no
// longer exist in the current problem, so they are renamed back to their
// base copy — exactly the identification the grown mask asserts.
func (a *analysis) injectFacts(p *smt.Problem, t *queryTask, snap *uniq.Snapshot) int {
	facts := a.facts.lookup(t.consKey, t.mask)
	if len(facts) == 0 {
		return 0
	}
	n := a.sys.NumSignals()
	f := a.sys.Field()
	rename := func(v int) int {
		if v >= n && snap.IsUnique(v-n) {
			return v - n
		}
		return v
	}
	count := 0
	for _, fact := range facts {
		lin := poly.Var(f, rename(fact.Var)).Sub(fact.Expr.RenameVars(rename))
		if len(lin.Vars()) == 0 {
			// The renaming collapsed the fact to a constant identity (e.g.
			// v := v′ after v became shared); nothing to add.
			continue
		}
		p.AddLinearEq(lin)
		count++
	}
	return count
}
