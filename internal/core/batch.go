package core

// Batch dispatch for incremental slice solving.
//
// Sibling queries of one round that share a constraint subset and a
// shared-signal mask are structurally the same base problem — only the
// target ≠ target′ disequality differs. Each round therefore groups its
// tasks by (constraint set, mask), prepares one smt.Session per group (a
// propagated base fixpoint, built fresh, reused verbatim from an earlier
// round, or extended in place when the mask grew), and lets the worker
// pool answer each task as a per-target continuation of the shared state.
//
// Exactness contract (see smt/incremental.go and DESIGN §13): a fresh or
// verbatim-reused session reproduces from-scratch outcomes byte-for-byte,
// so full-circuit queries — whose SAT models become counterexamples — may
// use them. An extended session preserves verdicts but not model bytes, so
// groups containing a full query rebuild instead of extending. Any group
// whose base cannot be prepared (poisoned by the "smt.incremental" chaos
// site, budget-starved, or crashed) falls back to from-scratch solving,
// optionally seeded with replay-safe learned facts (facts.go).
//
// Determinism: groups form sequentially in canonical task order; base
// grants are reserved in that order; base preparation runs in parallel but
// folds its budget/stats effects sequentially at a barrier, exactly like
// query results.

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qed2/internal/obs"
	"qed2/internal/poly"
	"qed2/internal/smt"
	"qed2/internal/uniq"
)

// batchPlan is the per-round decision for one group's base state.
type batchPlan int

const (
	// planFresh builds a new session for this (cons, mask).
	planFresh batchPlan = iota
	// planReuse continues a retained session with an identical mask
	// (byte-exact).
	planReuse
	// planExtend grows a retained session by the mask diff (verdict-exact,
	// non-full tasks only).
	planExtend
)

// batchGroup collects one round's sibling tasks over a common base.
type batchGroup struct {
	consKey string
	mask    string
	sigs    []int
	cons    []int
	tasks   []*queryTask
	hasFull bool

	plan        batchPlan
	sess        *smt.Session
	grant       int64
	stepsBefore int64
	panicked    bool

	// fallback routes the group's tasks to from-scratch solving; reason is
	// recorded on the trace event.
	fallback       bool
	fallbackReason string
}

func (g *batchGroup) markFallback(reason string) {
	g.fallback = true
	g.fallbackReason = reason
}

// usable reports whether tasks may be answered from the group's session.
func (g *batchGroup) usable() bool {
	return !g.fallback && g.sess != nil && !g.sess.Poisoned()
}

// sessionEntry is one retained base state in the cross-round store.
type sessionEntry struct {
	sess *smt.Session
	mask string
}

// baseGrantCap bounds the budget reserved for one group's base
// preparation. Base propagation carries no disequality, so it never
// enumerates — it only runs linear propagation to a fixpoint, which takes
// a handful of steps per equation. Reserving a full QuerySteps grant per
// group would drain the round's remaining pool after a few groups and
// force the rest into fallback; the cap keeps base reservations cheap. If
// a base genuinely needs more it halts, the session is poisoned, and the
// group falls back to from-scratch solving — never an unsoundness.
const baseGrantCap = 4096

// maxSessions caps the cross-round session store: beyond it, new bases are
// still built and used within their round but not retained (their learned
// facts, which are far smaller, still are). The cap is generous — one entry
// per distinct constraint slice — and purely a memory bound.
const maxSessions = 1024

// groupIdent derives the batch identity of a query: the constraint subset
// by content (indices into one system) and the shared-signal mask. Unlike
// sliceKey it deliberately excludes the target, so sibling targets over
// one slice share a group.
func groupIdent(cons, sigs []int, snap *uniq.Snapshot) (consKey, mask string) {
	var b strings.Builder
	b.Grow(len(cons) * 3)
	for _, c := range cons {
		b.WriteString(strconv.Itoa(c))
		b.WriteByte(',')
	}
	var m strings.Builder
	m.Grow(len(sigs))
	for _, v := range sigs {
		if snap.IsUnique(v) {
			m.WriteByte('1')
		} else {
			m.WriteByte('0')
		}
	}
	return b.String(), m.String()
}

// maskGrew reports that new shares strictly more signals than old (masks
// align positionally: equal constraint sets determine equal signal lists).
func maskGrew(old, new string) bool {
	if len(old) != len(new) || old == new {
		return false
	}
	for i := 0; i < len(old); i++ {
		if old[i] == '1' && new[i] == '0' {
			return false
		}
	}
	return true
}

// formGroups partitions the round's pending tasks into batch groups and
// decides each group's plan, reserving base-work grants sequentially in
// canonical order. Returns nil when incremental solving is disabled.
func (a *analysis) formGroups(pending []*queryTask) []*batchGroup {
	if a.cfg.DisableIncremental {
		return nil
	}
	// Tests construct analysis values directly; keep the stores lazy.
	if a.sessions == nil {
		a.sessions = map[string]*sessionEntry{}
	}
	if a.facts == nil {
		a.facts = newFactStore()
	}
	byKey := map[string]*batchGroup{}
	var groups []*batchGroup
	for _, t := range pending {
		if t.groupKey == "" {
			continue
		}
		g := byKey[t.groupKey]
		if g == nil {
			g = &batchGroup{consKey: t.consKey, mask: t.mask, cons: t.cons, sigs: t.sigs}
			byKey[t.groupKey] = g
			groups = append(groups, g)
		}
		g.tasks = append(g.tasks, t)
		if t.full {
			g.hasFull = true
		}
		t.grp = g
	}
	for _, g := range groups {
		entry := a.sessions[g.consKey]
		switch {
		case entry != nil && entry.mask == g.mask && !entry.sess.Poisoned():
			g.plan, g.sess = planReuse, entry.sess
			continue // no base work, no grant
		case entry != nil && !g.hasFull && !entry.sess.Poisoned() && maskGrew(entry.mask, g.mask):
			g.plan, g.sess = planExtend, entry.sess
			g.stepsBefore = entry.sess.BaseSteps()
		default:
			g.plan = planFresh
		}
		want := a.cfg.QuerySteps
		if want > baseGrantCap {
			want = baseGrantCap
		}
		g.grant = a.reserveN(want)
		if g.grant <= 0 {
			g.markFallback("global budget exhausted before base preparation")
		}
	}
	return groups
}

// prepareGroups builds/extends the groups' base sessions on a worker pool,
// then folds budget, statistics, the session store and the fact store
// sequentially in canonical group order.
func (a *analysis) prepareGroups(groups []*batchGroup, snap *uniq.Snapshot) {
	var work []*batchGroup
	for _, g := range groups {
		if g.plan != planReuse && !g.fallback {
			work = append(work, g)
		}
	}
	if len(work) > 0 {
		workers := a.cfg.Workers
		if workers > len(work) {
			workers = len(work)
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(work) {
						return
					}
					if a.ctx.Err() != nil {
						work[i].markFallback(smt.Canceled)
						continue
					}
					a.prepareGroup(work[i], snap)
				}
			}()
		}
		wg.Wait()
	}
	for _, g := range groups {
		a.accountGroup(g)
	}
}

// prepareGroup performs one group's base work inside a panic boundary: a
// crash during base preparation only ever costs the group its reuse (the
// tasks fall back to from-scratch solving), never the analysis.
func (a *analysis) prepareGroup(g *batchGroup, snap *uniq.Snapshot) {
	defer func() {
		if r := recover(); r != nil {
			g.panicked = true
			a.cfg.Obs.Event(a.span, "core.batch.panic",
				obs.KV("cons", len(g.cons)), obs.KV("panic", fmt.Sprint(r)),
				obs.KV("stack", truncStack(debug.Stack())))
		}
	}()
	if a.ctx.Err() != nil {
		g.markFallback(smt.Canceled)
		return
	}
	if !a.deadline.IsZero() && !time.Now().Before(a.deadline) {
		g.markFallback(smt.DeadlineExceeded)
		return
	}
	opts := &smt.Options{
		MaxSteps: g.grant,
		Seed:     a.cfg.Seed,
		Deadline: a.deadline,
		Ctx:      a.ctx,
		Metrics:  a.cfg.Metrics,
	}
	switch g.plan {
	case planFresh:
		g.sess = smt.NewSession(a.buildBaseProblem(g, snap), opts)
	case planExtend:
		g.sess.Extend(a.maskMerges(g), opts)
	}
}

// buildBaseProblem encodes the target-independent part of the group's
// uniqueness queries: both constraint copies with shared signals
// identified — buildUniquenessProblem minus the per-target disequality.
func (a *analysis) buildBaseProblem(g *batchGroup, snap *uniq.Snapshot) *smt.Problem {
	n := a.sys.NumSignals()
	prime := func(v int) int {
		if snap.IsUnique(v) {
			return v
		}
		return v + n
	}
	p := smt.NewProblem(a.sys.Field())
	for _, ci := range g.cons {
		c := a.sys.Constraint(ci)
		p.AddEq(c.A, c.B, c.C)
		p.AddEq(c.A.RenameVars(prime), c.B.RenameVars(prime), c.C.RenameVars(prime))
	}
	return p
}

// maskMerges lists the variable identifications for an Extend: every slice
// signal shared now but not when the session's mask was recorded.
func (a *analysis) maskMerges(g *batchGroup) []smt.VarMerge {
	entry := a.sessions[g.consKey]
	n := a.sys.NumSignals()
	var merges []smt.VarMerge
	for i, v := range g.sigs {
		if entry.mask[i] == '0' && g.mask[i] == '1' {
			merges = append(merges, smt.VarMerge{Keep: v, Drop: v + n})
		}
	}
	return merges
}

// accountGroup folds one group's base work into budget, stats, counters,
// and the session/fact stores. Runs sequentially in canonical group order.
func (a *analysis) accountGroup(g *batchGroup) {
	if g.plan != planReuse {
		var delta int64
		if g.sess != nil {
			delta = g.sess.BaseSteps() - g.stepsBefore
		}
		a.refund(g.grant - delta)
		a.report.Stats.SolverSteps += delta
		a.report.Stats.IncrementalBaseSteps += delta
		switch {
		case g.panicked:
			// The session may be half-mutated; drop it from the store so it
			// can never answer a later round.
			delete(a.sessions, g.consKey)
			g.markFallback("base preparation panicked")
		case g.fallback:
			// Base work was skipped before it started (budget, deadline,
			// cancellation); any retained session is untouched and still
			// valid for its recorded mask.
		case g.sess == nil || g.sess.Poisoned():
			reason := "base preparation failed"
			if g.sess != nil {
				reason = g.sess.PoisonReason()
			}
			if g.plan == planExtend {
				delete(a.sessions, g.consKey)
			}
			g.markFallback(reason)
		default:
			if g.plan == planExtend {
				a.report.Stats.IncrementalExtends++
			}
			if _, ok := a.sessions[g.consKey]; ok || len(a.sessions) < maxSessions {
				a.sessions[g.consKey] = &sessionEntry{sess: g.sess, mask: g.mask}
			}
			a.report.Stats.LearnedFacts += a.facts.record(g.consKey, g.mask, g.sess.Facts())
		}
	}
	if g.usable() {
		a.report.Stats.BatchGroups++
		a.cBatchGroups.Inc()
		a.cBatchTasks.Add(int64(len(g.tasks)))
	} else {
		a.report.Stats.IncrementalFallbacks++
		a.cIncFallbacks.Inc()
		a.cfg.Obs.Event(a.span, "core.batch.fallback",
			obs.KV("tasks", len(g.tasks)), obs.KV("reason", g.fallbackReason))
	}
}

// solveIncremental answers one task as a continuation of its group's
// session: only the target ≠ target′ disequality is new. The target is
// never shared (shared signals are not queried), so its primed copy is
// always target + n.
func (a *analysis) solveIncremental(g *batchGroup, t *queryTask, o *smt.Options) smt.Outcome {
	f := a.sys.Field()
	neq := poly.Var(f, t.sig).Sub(poly.Var(f, t.sig+a.sys.NumSignals()))
	return g.sess.Solve([]*poly.LinComb{neq}, o)
}
