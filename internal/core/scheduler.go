package core

import (
	"fmt"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/smt"
	"qed2/internal/uniq"
)

// The parallel slice-query engine.
//
// The QED² inner loop issues one two-copy uniqueness query per unknown
// signal; queries of one round are independent (they all read the same
// uniqueness snapshot), so they are dispatched to a pool of Config.Workers
// goroutines and their results are applied at a barrier in canonical signal
// order. Three properties keep the analysis deterministic for any worker
// count:
//
//  1. solver seeds derive from the target signal ID, not from a global
//     query sequence number that would depend on completion order;
//  2. the shared global step budget is reserved per query at dispatch time,
//     sequentially in canonical order, and unused steps are refunded at the
//     barrier — so which query gets how much budget never depends on timing;
//  3. uniqueness facts, counterexample confirmations and statistics are
//     folded in sequentially at the barrier.
//
// The only nondeterminism left is the wall-clock deadline: a timeout can cut
// different queries short on different runs, which is inherent to wall-clock
// budgets.

// queryTask is one uniqueness query scheduled in a round.
type queryTask struct {
	// sig is the target signal; cons the constraint subset of the query.
	sig  int
	cons []int
	// full reports whether cons covers the entire system (making SAT
	// answers conclusive).
	full bool
	// key is the slice-signature cache key ("" when the task was answered
	// from the cache or skipped before dispatch).
	key string
	// budget is the reserved solver-step grant.
	budget int64
	// ran reports whether the solver was actually invoked (false for cache
	// hits and for tasks skipped on budget or deadline exhaustion).
	ran bool
	// cached reports whether out came from the memo cache.
	cached bool
	// panicked reports that the query crashed a worker and was quarantined
	// to Unknown; such tasks get one degrade-and-retry attempt at the
	// barrier (see retryQuarantined).
	panicked bool
	out      smt.Outcome

	// Batch identity (batch.go): consKey/mask name the target-independent
	// base problem, groupKey = consKey + "|" + mask, sigs is the slice
	// signal list. All empty/nil when incremental solving is disabled or
	// the task was answered from the cache.
	consKey  string
	mask     string
	groupKey string
	sigs     []int
	grp      *batchGroup
	// inc reports the task was answered as a continuation of its group's
	// shared base state; factsInjected counts learned-fact equations added
	// to a from-scratch fallback problem. Both are set by the worker that
	// owns the task and folded at the barrier.
	inc           bool
	factsInjected int
}

// querySeed derives the solver seed for a query targeting sig. Deriving
// from the signal ID (instead of a global query counter) keeps probing
// deterministic under parallel dispatch: the same signal gets the same
// seed no matter when — or on which worker — its query runs.
func (a *analysis) querySeed(sig int) int64 {
	h := uint64(sig+1) * 0x9E3779B97F4A7C15 // Fibonacci hashing; spreads nearby IDs
	h ^= h >> 29
	return a.cfg.Seed ^ int64(h>>1)
}

// sliceKey builds the memo-cache signature of a query: the target, the
// constraint subset, and the shared/unshared mask of every signal the
// query mentions. Two queries with equal signatures are structurally
// identical problems and must have equal outcomes.
//
// Cached outcomes are replayed verbatim, models included, with no variable
// remapping — which is sound precisely because the signature pins the
// target signal ID and the slice is a deterministic function of the
// target. Two structurally isomorphic slices over *disjoint* signal ranges
// (the same gadget instantiated twice) get different signatures, so a
// model over one range can never be replayed for the other; see
// TestCacheKeysIsomorphicDisjointSlices.
func sliceKey(sig int, cons []int, sigs []int, snap *uniq.Snapshot) string {
	var b strings.Builder
	b.Grow(16 + len(sigs))
	// The constraint subset is determined by (target, len) here: slices are
	// a deterministic function of the target, and the only other caller
	// passes the full system. The length disambiguates the two.
	b.WriteString(strconv.Itoa(sig))
	b.WriteByte('/')
	b.WriteString(strconv.Itoa(len(cons)))
	b.WriteByte(':')
	for _, v := range sigs {
		if snap.IsUnique(v) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// admit prepares a task for dispatch: it consults the memo cache and, on a
// miss, reserves the task's step budget. Called sequentially in canonical
// signal order, which makes budget assignment deterministic.
func (a *analysis) admit(t *queryTask, sigs []int, snap *uniq.Snapshot) {
	key := sliceKey(t.sig, t.cons, sigs, snap)
	if out, ok := a.cache[key]; ok {
		t.cached = true
		t.out = out
		return
	}
	t.budget = a.reserve()
	if t.budget <= 0 {
		t.out = smt.Outcome{Status: smt.StatusUnknown, Reason: "global budget exhausted"}
		return
	}
	t.key = key
	if !a.cfg.DisableIncremental && len(t.cons) > 0 {
		t.consKey, t.mask = groupIdent(t.cons, sigs, snap)
		t.groupKey = t.consKey + "|" + t.mask
		t.sigs = sigs
	}
	a.cCacheMisses.Inc()
	a.hSliceCons.Observe(int64(len(t.cons)))
	a.hSliceSigs.Observe(int64(len(sigs)))
}

// internalErrPrefix prefixes the Reason of outcomes fabricated by the
// panic-quarantine boundary (runQuery, and the bench runner's instance
// boundary). It is the vocabulary outcomeDegradation classifies on, so the
// composer and the classifier can never drift apart.
const internalErrPrefix = "internal error"

// outcomeDegradation classifies one query outcome against the reason
// vocabulary this package and smt emit: exactly smt.Canceled for
// cancellation, the quarantine prefix for recovered panics. It runs on the
// raw outcome reason — before the report loops wrap it into a human-readable
// "output X undecided: …" phrase — so rewording a report can never defeat
// the classification.
func outcomeDegradation(out smt.Outcome) Degradation {
	if out.Status != smt.StatusUnknown {
		return DegradedNone
	}
	switch {
	case out.Reason == smt.Canceled:
		return DegradedCanceled
	case strings.HasPrefix(out.Reason, internalErrPrefix):
		return DegradedInternal
	}
	return DegradedNone
}

// runQuery invokes the solver for one query inside the per-query fault
// boundary: a panic anywhere in problem construction or solving is recovered
// into an Unknown outcome with reason "internal error: …" (with a truncated
// stack captured as an obs event) instead of crashing the worker — and by
// extension the whole analysis. A panicked query can only ever degrade the
// verdict to unknown: safe needs a sound UNSAT proof and unsafe needs a
// checked counterexample, neither of which a crashed attempt can produce.
func (a *analysis) runQuery(build func() *smt.Problem, sig, consLen int, full bool, grant, seed int64) (out smt.Outcome, panicked bool) {
	return a.runQueryVia(func(o *smt.Options) smt.Outcome {
		return smt.Solve(build(), o)
	}, sig, consLen, full, grant, seed)
}

// runQueryVia is runQuery generalized over the solving strategy: the
// closure receives the fully-assembled solver options and may answer
// from-scratch (smt.Solve) or as an incremental-session continuation. The
// fault boundary, span bracketing and fault-injection check are identical
// either way.
func (a *analysis) runQueryVia(solve func(o *smt.Options) smt.Outcome, sig, consLen int, full bool, grant, seed int64) (out smt.Outcome, panicked bool) {
	qs := a.cfg.Obs.Start(a.span, "core.query",
		obs.KV("sig", sig), obs.KV("cons", consLen), obs.KV("full", full))
	defer func() {
		if r := recover(); r != nil {
			panicked = true
			a.nPanics.Add(1)
			a.cPanics.Inc()
			a.cfg.Obs.Event(a.span, "core.query.panic",
				obs.KV("sig", sig), obs.KV("panic", fmt.Sprint(r)),
				obs.KV("stack", truncStack(debug.Stack())))
			out = smt.Outcome{Status: smt.StatusUnknown, Reason: fmt.Sprintf("%s: %v", internalErrPrefix, r)}
		}
		// End the span here so a panic cannot leave it unbalanced.
		qs.End(obs.KV("status", out.Status.String()), obs.KV("steps", out.Steps))
	}()
	if faultinject.Enabled() {
		faultinject.Check("core.query")
	}
	out = solve(&smt.Options{
		MaxSteps: grant,
		Seed:     seed,
		Deadline: a.deadline,
		Ctx:      a.ctx,
		Obs:      a.cfg.Obs,
		Parent:   qs,
		Metrics:  a.cfg.Metrics,
	})
	return out, false
}

// truncStack caps a panic stack trace for trace-event payloads.
func truncStack(s []byte) string {
	const max = 2048
	if len(s) > max {
		s = s[:max]
	}
	return string(s)
}

const (
	// retryBudgetShrink divides the standard query grant for the single
	// degrade-and-retry attempt after a panic quarantine.
	retryBudgetShrink = 4
	// retrySeedPerturb XORs the query seed on retry so the second attempt
	// takes a different probe path than the one that crashed.
	retrySeedPerturb = 0x5DEECE66D
)

// retryOnce re-runs a quarantined (panicked) query once with a reduced step
// budget and a perturbed seed. When the retry also panics — or no budget
// remains — the quarantined Unknown outcome stands. The crashed attempt's
// own step consumption is unknowable, so its grant was refunded in full;
// the retry accounts its steps normally.
func (a *analysis) retryOnce(build func() *smt.Problem, sig, consLen int, full bool, quarantined smt.Outcome) smt.Outcome {
	if a.outOfBudget() {
		return quarantined
	}
	grant := a.reserveN(a.cfg.QuerySteps / retryBudgetShrink)
	if grant <= 0 {
		return quarantined
	}
	a.nRetries.Add(1)
	a.cRetries.Inc()
	out, panicked := a.runQuery(build, sig, consLen, full, grant, a.querySeed(sig)^retrySeedPerturb)
	a.refund(grant - out.Steps)
	if panicked {
		return quarantined
	}
	return out
}

// retryQuarantined gives each panicked task of a round its single
// degrade-and-retry attempt. Runs sequentially at the barrier in canonical
// order, so the reduced-budget reservations stay deterministic.
func (a *analysis) retryQuarantined(pending []*queryTask, snap *uniq.Snapshot) {
	for _, t := range pending {
		if !t.panicked {
			continue
		}
		t.out = a.retryOnce(func() *smt.Problem {
			return buildUniquenessProblem(a.sys, t.cons, snap.IsUnique, t.sig)
		}, t.sig, len(t.cons), t.full, t.out)
	}
}

// runRound solves every admitted task on the worker pool and blocks until
// the round is complete. Workers only read immutable state (the system, the
// snapshot) plus the atomic budget; all mutable analysis state is folded in
// afterwards by the caller. Each query runs inside runQuery's panic
// boundary; quarantined tasks get one reduced-budget retry after the
// barrier.
func (a *analysis) runRound(tasks []*queryTask, snap *uniq.Snapshot) {
	var pending []*queryTask
	for _, t := range tasks {
		if !t.cached && t.budget > 0 {
			pending = append(pending, t)
		}
	}
	if len(pending) == 0 {
		return
	}
	groups := a.formGroups(pending)
	a.prepareGroups(groups, snap)
	workers := a.cfg.Workers
	if workers > len(pending) {
		workers = len(pending)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pending) {
					return
				}
				t := pending[i]
				if a.ctx.Err() != nil {
					a.refund(t.budget)
					t.out = smt.Outcome{Status: smt.StatusUnknown, Reason: smt.Canceled}
					a.cfg.Obs.Event(a.span, "core.query.skipped",
						obs.KV("sig", t.sig), obs.KV("reason", smt.Canceled))
					continue
				}
				if !a.deadline.IsZero() && !time.Now().Before(a.deadline) {
					a.refund(t.budget)
					t.out = smt.Outcome{Status: smt.StatusUnknown, Reason: smt.DeadlineExceeded}
					a.cfg.Obs.Event(a.span, "core.query.skipped",
						obs.KV("sig", t.sig), obs.KV("reason", smt.DeadlineExceeded))
					continue
				}
				t.out, t.panicked = a.runQueryVia(func(o *smt.Options) smt.Outcome {
					if g := t.grp; g != nil && g.usable() {
						t.inc = true
						return a.solveIncremental(g, t, o)
					}
					p := buildUniquenessProblem(a.sys, t.cons, snap.IsUnique, t.sig)
					if t.grp != nil && !t.full {
						t.factsInjected = a.injectFacts(p, t, snap)
					}
					return smt.Solve(p, o)
				}, t.sig, len(t.cons), t.full, t.budget, a.querySeed(t.sig))
				t.ran = true
				a.refund(t.budget - t.out.Steps)
			}
		}()
	}
	wg.Wait()
	a.retryQuarantined(pending, snap)
}

// accountTask folds one completed task into the statistics and the memo
// cache. Called sequentially at the round barrier.
func (a *analysis) accountTask(t *queryTask) {
	if t.cached {
		a.report.Stats.CacheHits++
		a.cCacheHits.Inc()
		a.cfg.Obs.Event(a.span, "core.cache_hit", obs.KV("sig", t.sig))
		return
	}
	if !t.ran {
		return // skipped on budget, deadline, or cancellation
	}
	a.report.Stats.Queries++
	a.report.Stats.SolverSteps += t.out.Steps
	if t.inc {
		a.report.Stats.IncrementalReuses++
	}
	if t.factsInjected > 0 {
		a.report.Stats.FactsInjected += t.factsInjected
		a.cFactsInjected.Add(int64(t.factsInjected))
	}
	if t.key != "" && cacheable(t.out) {
		a.cache[t.key] = t.out
	}
}

// cacheable decides what the memo cache may retain. Decided outcomes (SAT
// with a checked model, proven UNSAT) always replay safely. Unknowns are
// split: a deterministic unknown — the search exhausted its patterns and
// enumeration without hitting any resource limit — replays identically for
// the same problem, but a *resource-limited* unknown (step budget,
// deadline, cancellation, injected fault) only describes the grant it ran
// under. Caching one would let a budget-starved first query poison a
// well-funded re-query of the same slice signature forever; see
// TestCacheDoesNotReplayResourceLimitedUnknowns. Quarantine products
// ("internal …") are likewise transient and never retained.
func cacheable(out smt.Outcome) bool {
	if out.Status != smt.StatusUnknown {
		return true
	}
	return !out.ResourceLimited && !strings.HasPrefix(out.Reason, "internal")
}
