package core

import (
	"qed2/internal/poly"
	"qed2/internal/r1cs"
	"qed2/internal/smt"
)

// buildUniquenessProblem encodes the two-copy uniqueness query:
//
//	C(x) ∧ C(x′) ∧ (x_s = x′_s for every shared signal s) ∧ target ≠ target′
//
// over the given subset of constraints. Instead of explicit equalities,
// shared signals simply keep their variable in both copies; every other
// signal v gets a primed copy v + N (N = number of signals). A model is
// therefore a pair of assignments agreeing on the shared signals with the
// target taking two different values. UNSAT on the FULL constraint set
// proves the target uniquely determined; UNSAT on a subset is still sound
// for uniqueness (more constraints only remove solutions), while SAT on a
// subset is only a candidate.
func buildUniquenessProblem(sys *r1cs.System, consIdx []int, isShared func(int) bool, target int) *smt.Problem {
	if isShared(target) {
		panic("core: uniqueness query for a shared signal")
	}
	n := sys.NumSignals()
	prime := func(v int) int {
		if isShared(v) {
			return v
		}
		return v + n
	}
	p := smt.NewProblem(sys.Field())
	for _, ci := range consIdx {
		c := sys.Constraint(ci)
		p.AddEq(c.A, c.B, c.C)
		p.AddEq(c.A.RenameVars(prime), c.B.RenameVars(prime), c.C.RenameVars(prime))
	}
	f := sys.Field()
	p.AddNeq(poly.Var(f, target).Sub(poly.Var(f, prime(target))))
	return p
}
