package core

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/smt"
	"qed2/internal/uniq"
)

// newTestAnalysis builds a bare analysis over sys for white-box scheduler
// tests, with the observability handles left as nil-safe no-ops unless a
// tracer is supplied.
func newTestAnalysis(sys *r1cs.System, cfg Config, ctx context.Context, tr *obs.Tracer) *analysis {
	c := cfg.withDefaults()
	c.Obs = tr
	a := &analysis{
		sys:    sys,
		cfg:    c,
		ctx:    ctx,
		start:  time.Now(),
		report: &Report{},
		cache:  map[string]smt.Outcome{},
		prop:   uniq.New(sys),
	}
	a.stepsRem.Store(c.GlobalSteps)
	a.span = tr.Start(nil, "core.analyze")
	return a
}

func TestReserveRefundExactAccounting(t *testing.T) {
	a := &analysis{cfg: Config{QuerySteps: 100}}
	a.stepsRem.Store(250)
	if got := a.reserve(); got != 100 {
		t.Fatalf("first reserve = %d, want 100", got)
	}
	if got := a.reserve(); got != 100 {
		t.Fatalf("second reserve = %d, want 100", got)
	}
	// Only 50 left: the grant is clamped, not overdrawn.
	if got := a.reserve(); got != 50 {
		t.Fatalf("third reserve = %d, want clamped 50", got)
	}
	if got := a.reserve(); got != 0 {
		t.Fatalf("reserve on empty pool = %d, want 0", got)
	}
	a.refund(30)
	if got := a.reserveN(20); got != 20 {
		t.Fatalf("reserveN(20) after refund = %d, want 20", got)
	}
	if got := a.stepsRem.Load(); got != 10 {
		t.Fatalf("stepsRem = %d, want 10 (250-100-100-50+30-20)", got)
	}
	// A negative refund models the one-step overshoot of a final step check.
	a.refund(-1)
	if got := a.stepsRem.Load(); got != 9 {
		t.Fatalf("stepsRem after overshoot refund = %d, want 9", got)
	}
}

func TestAdmitOnExhaustedBudgetYieldsUnknownWithoutDispatch(t *testing.T) {
	p := compile(t, isZeroBuggy)
	a := newTestAnalysis(p.System, Config{}, context.Background(), nil)
	a.stepsRem.Store(0)
	snap := a.prop.Snapshot()
	sl := p.System.SliceAround(a.prop.Unknown()[0], 2, 64)
	task := &queryTask{sig: a.prop.Unknown()[0], cons: sl.Constraints}
	a.admit(task, sl.Signals, snap)
	if task.budget != 0 {
		t.Fatalf("budget = %d, want 0", task.budget)
	}
	if task.out.Status != smt.StatusUnknown || task.out.Reason != "global budget exhausted" {
		t.Fatalf("outcome = %+v, want unknown/global budget exhausted", task.out)
	}
	// An exhausted-budget task must not be counted as a solver query.
	a.accountTask(task)
	if a.report.Stats.Queries != 0 {
		t.Fatalf("queries = %d, want 0", a.report.Stats.Queries)
	}
}

// admitTasks admits every unknown signal of a fresh analysis into one round's
// task list, mirroring the dispatch loop of runFull.
func admitTasks(a *analysis, snap *uniq.Snapshot) []*queryTask {
	var tasks []*queryTask
	for _, s := range a.prop.Unknown() {
		sl := a.sys.SliceAround(s, a.cfg.SliceRadius, a.cfg.MaxSliceConstraints)
		t := &queryTask{sig: s, cons: sl.Constraints, full: len(sl.Constraints) == a.sys.NumConstraints()}
		a.admit(t, sl.Signals, snap)
		tasks = append(tasks, t)
	}
	return tasks
}

func TestExpiredDeadlineSkipsQueriesAndRefundsBudget(t *testing.T) {
	p := compile(t, isZeroBuggy)
	var trace bytes.Buffer
	tr := obs.New(&trace)
	a := newTestAnalysis(p.System, Config{Workers: 2}, context.Background(), tr)
	a.deadline = time.Now().Add(-time.Second)
	total := a.stepsRem.Load()

	snap := a.prop.Snapshot()
	tasks := admitTasks(a, snap)
	if len(tasks) == 0 {
		t.Fatal("test circuit produced no tasks")
	}
	a.runRound(tasks, snap)
	for _, task := range tasks {
		if task.ran {
			t.Fatalf("task for sig %d ran past an expired deadline", task.sig)
		}
		if task.panicked {
			t.Fatalf("task for sig %d marked panicked", task.sig)
		}
		if task.out.Status != smt.StatusUnknown || task.out.Reason != smt.DeadlineExceeded {
			t.Fatalf("task outcome = %+v, want unknown/%s", task.out, smt.DeadlineExceeded)
		}
		a.accountTask(task)
	}
	// Every reserved grant must have been refunded at the skip site.
	if got := a.stepsRem.Load(); got != total {
		t.Fatalf("stepsRem = %d, want full pool %d restored", got, total)
	}
	if a.report.Stats.Queries != 0 || a.report.Stats.SolverSteps != 0 {
		t.Fatalf("stats counted skipped queries: %+v", a.report.Stats)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"core.query.skipped"`) ||
		!strings.Contains(trace.String(), smt.DeadlineExceeded) {
		t.Fatal("trace missing core.query.skipped event with deadline reason")
	}
}

func TestCanceledContextSkipsQueriesAndRefundsBudget(t *testing.T) {
	p := compile(t, isZeroBuggy)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var trace bytes.Buffer
	tr := obs.New(&trace)
	a := newTestAnalysis(p.System, Config{}, ctx, tr)
	total := a.stepsRem.Load()

	snap := a.prop.Snapshot()
	tasks := admitTasks(a, snap)
	a.runRound(tasks, snap)
	for _, task := range tasks {
		if task.ran {
			t.Fatalf("task for sig %d ran under a canceled context", task.sig)
		}
		if task.out.Status != smt.StatusUnknown || task.out.Reason != smt.Canceled {
			t.Fatalf("task outcome = %+v, want unknown/%s", task.out, smt.Canceled)
		}
	}
	if got := a.stepsRem.Load(); got != total {
		t.Fatalf("stepsRem = %d, want full pool %d restored", got, total)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"core.query.skipped"`) ||
		!strings.Contains(trace.String(), smt.Canceled) {
		t.Fatal("trace missing core.query.skipped event with canceled reason")
	}
}

// TestRunQueryPanicQuarantineAndRetry drives the degrade-and-retry path
// deterministically without faultinject: a problem builder that panics on
// its first call and builds a real query on the second.
func TestRunQueryPanicQuarantineAndRetry(t *testing.T) {
	p := compile(t, `
template Mul() {
    signal input a;
    signal input b;
    signal output c;
    c <== a*b;
}
component main = Mul();
`)
	sys := p.System
	var trace bytes.Buffer
	tr := obs.New(&trace)
	a := newTestAnalysis(sys, Config{QuerySteps: 50_000}, context.Background(), tr)

	shared := map[int]bool{r1cs.OneID: true}
	for _, in := range sys.Inputs() {
		shared[in] = true
	}
	allCons := make([]int, sys.NumConstraints())
	for i := range allCons {
		allCons[i] = i
	}
	target := sys.Outputs()[0]
	calls := 0
	build := func() *smt.Problem {
		calls++
		if calls == 1 {
			panic("boom")
		}
		return buildUniquenessProblem(sys, allCons, func(v int) bool { return shared[v] }, target)
	}

	grant := a.reserve()
	out, panicked := a.runQuery(build, target, len(allCons), true, grant, a.querySeed(target))
	a.refund(grant - out.Steps)
	if !panicked {
		t.Fatal("first attempt did not report the panic")
	}
	if out.Status != smt.StatusUnknown || !strings.Contains(out.Reason, "internal error: boom") {
		t.Fatalf("quarantined outcome = %+v, want unknown/internal error: boom", out)
	}
	if out.Steps != 0 {
		t.Fatalf("quarantined outcome claims %d steps; its grant must be refunded in full", out.Steps)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace.String(), `"core.query.panic"`) || !strings.Contains(trace.String(), "boom") {
		t.Fatal("trace missing core.query.panic event")
	}

	retried := a.retryOnce(build, target, len(allCons), true, out)
	if retried.Status != smt.StatusUnsat {
		t.Fatalf("retry outcome = %+v, want unsat (output is unique)", retried)
	}
	if got := a.nPanics.Load(); got != 1 {
		t.Fatalf("nPanics = %d, want 1", got)
	}
	if got := a.nRetries.Load(); got != 1 {
		t.Fatalf("nRetries = %d, want 1", got)
	}
}

// TestRetryBudgetAndSecondPanic pins the two degradation rules of retryOnce:
// no budget left → the quarantined outcome stands untouched, and a second
// panic → the quarantined outcome stands (never a third attempt).
func TestRetryBudgetAndSecondPanic(t *testing.T) {
	p := compile(t, isZeroBuggy)
	a := newTestAnalysis(p.System, Config{}, context.Background(), nil)
	quarantined := smt.Outcome{Status: smt.StatusUnknown, Reason: "internal error: boom"}
	alwaysPanic := func() *smt.Problem { panic("boom again") }

	sameAsQuarantined := func(out smt.Outcome) bool {
		return out.Status == quarantined.Status && out.Reason == quarantined.Reason && out.Steps == 0
	}
	a.stepsRem.Store(0)
	if out := a.retryOnce(alwaysPanic, 1, 1, true, quarantined); !sameAsQuarantined(out) {
		t.Fatalf("retry without budget = %+v, want quarantined outcome unchanged", out)
	}
	if a.nRetries.Load() != 0 {
		t.Fatalf("budgetless retry was counted: %d", a.nRetries.Load())
	}

	a.stepsRem.Store(1000)
	if out := a.retryOnce(alwaysPanic, 1, 1, true, quarantined); !sameAsQuarantined(out) {
		t.Fatalf("twice-panicked retry = %+v, want quarantined outcome unchanged", out)
	}
	if a.nRetries.Load() != 1 || a.nPanics.Load() != 1 {
		t.Fatalf("retry/panic counters = %d/%d, want 1/1", a.nRetries.Load(), a.nPanics.Load())
	}
	// The doomed retry's grant must still come back to the pool.
	if got := a.stepsRem.Load(); got != 1000 {
		t.Fatalf("stepsRem = %d, want 1000 refunded", got)
	}
}

// TestAnalyzeSurvivesInjectedQueryPanics arms an always-firing panic rule at
// the core.query site: every solver attempt (and every retry) crashes, and
// the analysis must degrade to a clean Unknown verdict rather than crash or
// flip to safe/unsafe.
func TestAnalyzeSurvivesInjectedQueryPanics(t *testing.T) {
	faultinject.Enable(&faultinject.Plan{Seed: 1, Rules: []faultinject.Rule{
		{Site: "core.query", Kind: faultinject.KindPanic, Every: 1},
	}})
	defer faultinject.Disable()

	p := compile(t, isZeroSafe)
	r := AnalyzeContext(context.Background(), p.System, &Config{Workers: 1, Seed: 1})
	if r.Verdict != VerdictUnknown {
		t.Fatalf("verdict under total query panic = %v (%s), want unknown", r.Verdict, r.Reason)
	}
	// The report reason is the wrapped human-readable form; the structured
	// flag must still classify the unknown as panic-degraded.
	if !strings.Contains(r.Reason, "internal error") {
		t.Fatalf("reason = %q, want a quarantine reason", r.Reason)
	}
	if r.Degraded != DegradedInternal {
		t.Fatalf("Degraded = %q (reason %q), want %q", r.Degraded, r.Reason, DegradedInternal)
	}
	if r.Stats.QueryPanics == 0 {
		t.Fatal("Stats.QueryPanics = 0, want > 0")
	}
	if r.Stats.QueryRetries == 0 {
		t.Fatal("Stats.QueryRetries = 0, want > 0 (quarantined queries get one retry)")
	}
	if r.Stats.QueryPanics != 2*r.Stats.QueryRetries {
		t.Fatalf("panics = %d, retries = %d: with every=1 each retry must panic exactly once more",
			r.Stats.QueryPanics, r.Stats.QueryRetries)
	}
}

// TestOutcomeDegradationClassification pins the classifier's vocabulary: it
// runs on raw query-outcome reasons (exact smt.Canceled, the quarantine
// prefix), and decided outcomes are never degraded.
func TestOutcomeDegradationClassification(t *testing.T) {
	for _, tc := range []struct {
		out  smt.Outcome
		want Degradation
	}{
		{smt.Outcome{Status: smt.StatusUnknown, Reason: smt.Canceled}, DegradedCanceled},
		{smt.Outcome{Status: smt.StatusUnknown, Reason: "internal error: boom"}, DegradedInternal},
		{smt.Outcome{Status: smt.StatusUnknown, Reason: "step budget exhausted"}, DegradedNone},
		{smt.Outcome{Status: smt.StatusUnknown, Reason: smt.DeadlineExceeded}, DegradedNone},
		{smt.Outcome{Status: smt.StatusUnknown, Reason: "injected solver fault mentioning canceled"}, DegradedNone},
		{smt.Outcome{Status: smt.StatusUnsat, Reason: smt.Canceled}, DegradedNone},
	} {
		if got := outcomeDegradation(tc.out); got != tc.want {
			t.Errorf("outcomeDegradation(%v/%q) = %q, want %q", tc.out.Status, tc.out.Reason, got, tc.want)
		}
	}
}

// TestAnalyzeCanceledReportsDegradedCanceled: every Unknown report out of a
// canceled analysis must carry the structured cancellation flag, whatever
// reason wording the mode's loop assembled.
func TestAnalyzeCanceledReportsDegradedCanceled(t *testing.T) {
	p := compile(t, isZeroBuggy)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []Mode{ModeFull, ModeSMTOnly} {
		r := AnalyzeContext(ctx, p.System, &Config{Mode: mode, Workers: 1, Seed: 1})
		if r.Verdict != VerdictUnknown {
			t.Fatalf("%s: verdict under canceled ctx = %v, want unknown", mode, r.Verdict)
		}
		if r.Degraded != DegradedCanceled {
			t.Fatalf("%s: Degraded = %q (reason %q), want %q", mode, r.Degraded, r.Reason, DegradedCanceled)
		}
	}
}
