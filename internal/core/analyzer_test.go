package core

import (
	"math/big"
	"math/rand"
	"testing"
	"time"

	"qed2/internal/circom"
	"qed2/internal/ff"
	"qed2/internal/poly"
	"qed2/internal/r1cs"
)

func compile(t testing.TB, src string) *circom.Program {
	t.Helper()
	p, err := circom.Compile(src, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func analyze(t testing.TB, src string, cfg *Config) *Report {
	t.Helper()
	p := compile(t, src)
	return Analyze(p.System, cfg)
}

const isZeroSafe = `
template IsZero() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    in*out === 0;
}
component main = IsZero();
`

const isZeroBuggy = `
template IsZeroBuggy() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    // BUG: missing in*out === 0;
}
component main = IsZeroBuggy();
`

func TestAnalyzeMultiplierSafe(t *testing.T) {
	r := analyze(t, `
template Mul() {
    signal input a;
    signal input b;
    signal output c;
    c <== a*b;
}
component main = Mul();
`, nil)
	if r.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v (%s)", r.Verdict, r.Reason)
	}
	// Propagation alone should have resolved it: zero SMT queries.
	if r.Stats.Queries != 0 {
		t.Errorf("queries = %d, want 0 (pure propagation)", r.Stats.Queries)
	}
}

func TestAnalyzeIsZeroSafe(t *testing.T) {
	r := analyze(t, isZeroSafe, nil)
	if r.Verdict != VerdictSafe {
		t.Fatalf("verdict = %v (%s)", r.Verdict, r.Reason)
	}
	if r.Stats.Queries == 0 {
		t.Error("expected SMT queries for IsZero (propagation alone cannot finish it)")
	}
	if r.Stats.SMTUnique == 0 {
		t.Error("expected at least one SMT-proven signal")
	}
}

func TestAnalyzeIsZeroBuggyUnsafe(t *testing.T) {
	p := compile(t, isZeroBuggy)
	r := Analyze(p.System, nil)
	if r.Verdict != VerdictUnsafe {
		t.Fatalf("verdict = %v (%s)", r.Verdict, r.Reason)
	}
	ce := r.Counter
	if ce == nil {
		t.Fatal("unsafe verdict without counterexample")
	}
	// The counterexample must be genuinely checkable.
	if err := p.System.CheckWitness(ce.W1); err != nil {
		t.Errorf("W1 invalid: %v", err)
	}
	if err := p.System.CheckWitness(ce.W2); err != nil {
		t.Errorf("W2 invalid: %v", err)
	}
	if !r1cs.AgreeOn(ce.W1, ce.W2, p.System.Inputs()) {
		t.Error("witnesses disagree on inputs")
	}
	if ce.W1[ce.Signal] == ce.W2[ce.Signal] {
		t.Error("witnesses agree on the flagged output")
	}
	if p.System.Signal(ce.Signal).Kind != r1cs.KindOutput {
		t.Error("flagged signal is not an output")
	}
}

const decoderBuggy = `
template Decoder(w) {
    signal input inp;
    signal output out[w];
    signal output success;
    var lc = 0;
    for (var i = 0; i < w; i++) {
        out[i] <-- (inp == i) ? 1 : 0;
        out[i] * (inp - i) === 0;
        lc = lc + out[i];
    }
    lc ==> success;
    success * (success - 1) === 0;
}
component main = Decoder(4);
`

func TestAnalyzeDecoderUnsafe(t *testing.T) {
	// circomlib's Decoder is genuinely under-constrained: the all-zeros
	// output with success=0 is accepted for any input.
	r := analyze(t, decoderBuggy, nil)
	if r.Verdict != VerdictUnsafe {
		t.Fatalf("verdict = %v (%s)", r.Verdict, r.Reason)
	}
}

func TestAnalyzeNum2BitsSafe(t *testing.T) {
	r := analyze(t, `
template Num2Bits(n) {
    signal input in;
    signal output out[n];
    var lc1 = 0;
    var e2 = 1;
    for (var i = 0; i < n; i++) {
        out[i] <-- (in >> i) & 1;
        out[i] * (out[i] - 1) === 0;
        lc1 += out[i] * e2;
        e2 = e2 + e2;
    }
    lc1 === in;
}
component main = Num2Bits(6);
`, nil)
	// Bit decompositions are unique... as long as 2^n < p; the analysis
	// must prove it (this requires reasoning across the boolean bits).
	if r.Verdict == VerdictUnsafe {
		t.Fatalf("Num2Bits flagged unsafe: %+v", r.Counter)
	}
	if r.Verdict != VerdictSafe {
		t.Logf("Num2Bits verdict = %v (%s) — acceptable but weaker", r.Verdict, r.Reason)
	}
}

func TestModePropagationOnly(t *testing.T) {
	// Linear circuit: propagation suffices.
	r := analyze(t, `
template Lin() {
    signal input a;
    signal output b;
    b <== 3*a + 5;
}
component main = Lin();
`, &Config{Mode: ModePropagationOnly})
	if r.Verdict != VerdictSafe || r.Stats.Queries != 0 {
		t.Fatalf("verdict=%v queries=%d", r.Verdict, r.Stats.Queries)
	}
	// IsZero needs SMT: propagation-only must say Unknown, never Unsafe.
	r = analyze(t, isZeroBuggy, &Config{Mode: ModePropagationOnly})
	if r.Verdict != VerdictUnknown {
		t.Fatalf("propagation-only on buggy circuit = %v, want unknown", r.Verdict)
	}
	if r.Reason == "" {
		t.Error("unknown verdict lacks a reason")
	}
}

func TestModeSMTOnly(t *testing.T) {
	r := analyze(t, isZeroSafe, &Config{Mode: ModeSMTOnly})
	if r.Verdict != VerdictSafe {
		t.Fatalf("smt-only on IsZero = %v (%s)", r.Verdict, r.Reason)
	}
	r = analyze(t, isZeroBuggy, &Config{Mode: ModeSMTOnly})
	if r.Verdict != VerdictUnsafe {
		t.Fatalf("smt-only on buggy IsZero = %v (%s)", r.Verdict, r.Reason)
	}
}

func TestBudgetYieldsUnknown(t *testing.T) {
	r := analyze(t, isZeroSafe, &Config{GlobalSteps: 1})
	if r.Verdict != VerdictUnknown {
		t.Fatalf("verdict = %v under 1-step budget", r.Verdict)
	}
	if r.Reason == "" {
		t.Error("no reason for unknown")
	}
}

func TestDeterminism(t *testing.T) {
	p := compile(t, decoderBuggy)
	r1 := Analyze(p.System, &Config{Seed: 7})
	r2 := Analyze(p.System, &Config{Seed: 7})
	if r1.Verdict != r2.Verdict || r1.Stats.Queries != r2.Stats.Queries {
		t.Errorf("non-deterministic: %v/%d vs %v/%d", r1.Verdict, r1.Stats.Queries, r2.Verdict, r2.Stats.Queries)
	}
}

func TestFreeOutputUnsafe(t *testing.T) {
	// An output mentioned in no constraint is trivially non-unique.
	f97 := ff.MustField(big.NewInt(97))
	sys := r1cs.NewSystem(f97)
	a := sys.AddSignal("a", r1cs.KindInput)
	sys.AddSignal("free", r1cs.KindOutput)
	sys.AddConstraint(poly.Var(f97, a), poly.ConstInt(f97, 1), poly.Var(f97, a), "id")
	r := Analyze(sys, nil)
	if r.Verdict != VerdictUnsafe {
		t.Fatalf("free output verdict = %v (%s)", r.Verdict, r.Reason)
	}
}

func TestVerdictAndModeStrings(t *testing.T) {
	if VerdictSafe.String() != "safe" || VerdictUnsafe.String() != "unsafe" ||
		VerdictUnknown.String() != "unknown" || Verdict(9).String() == "" {
		t.Error("Verdict strings")
	}
	if ModeFull.String() != "qed2" || ModePropagationOnly.String() != "propagation-only" ||
		ModeSMTOnly.String() != "smt-only" || Mode(9).String() == "" {
		t.Error("Mode strings")
	}
}

// --- soundness property test ------------------------------------------------------

// outputsUniqueBrute decides ground-truth output-uniqueness of a small
// system over a tiny field by exhaustive enumeration. Returns
// (allOutputsUnique, someOutputNonUnique-with-two-witnesses).
func outputsUniqueBrute(sys *r1cs.System) (bool, bool) {
	f := sys.Field()
	p := int64(f.SmallModulus())
	n := sys.NumSignals()
	total := int64(1)
	for i := 1; i < n; i++ {
		total *= p
	}
	type rec struct{ outs []string }
	byInput := map[string][]rec{}
	w := sys.NewWitness()
	for enc := int64(0); enc < total; enc++ {
		v := enc
		for i := 1; i < n; i++ {
			w[i] = f.NewElement(v % p)
			v /= p
		}
		if sys.CheckWitness(w) != nil {
			continue
		}
		var ik []byte
		for _, in := range sys.Inputs() {
			ik = append(ik, byte('0'+f.ToBig(w[in]).Int64()))
		}
		var outs []string
		for _, o := range sys.Outputs() {
			outs = append(outs, f.String(w[o]))
		}
		byInput[string(ik)] = append(byInput[string(ik)], rec{outs: outs})
	}
	unique := true
	nonUnique := false
	for _, recs := range byInput {
		for i := 1; i < len(recs); i++ {
			for j, v := range recs[i].outs {
				if v != recs[0].outs[j] {
					unique = false
					nonUnique = true
				}
			}
		}
	}
	return unique, nonUnique
}

func TestAnalyzerSoundnessRandomSmallField(t *testing.T) {
	f5 := ff.MustField(big.NewInt(5))
	rng := rand.New(rand.NewSource(4242))
	decided := 0
	for iter := 0; iter < 120; iter++ {
		sys := r1cs.NewSystem(f5)
		sys.AddSignal("", r1cs.KindInput)
		sys.AddSignal("", r1cs.KindInternal)
		sys.AddSignal("", r1cs.KindOutput)
		if rng.Intn(2) == 0 {
			sys.AddSignal("", r1cs.KindOutput)
		}
		n := sys.NumSignals()
		randLC := func() *poly.LinComb {
			out := poly.ConstInt(f5, int64(rng.Intn(5)))
			for v := 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					out = out.AddTerm(v, f5.NewElement(int64(rng.Intn(5))))
				}
			}
			return out
		}
		for k := 1 + rng.Intn(3); k > 0; k-- {
			sys.AddConstraint(randLC(), randLC(), randLC(), "")
		}
		gotUnique, gotNonUnique := outputsUniqueBrute(sys)
		r := Analyze(sys, &Config{Seed: int64(iter)})
		switch r.Verdict {
		case VerdictSafe:
			if !gotUnique {
				t.Fatalf("iter %d: UNSOUND Safe verdict\n%s", iter, sys.MarshalText())
			}
			decided++
		case VerdictUnsafe:
			if !gotNonUnique {
				t.Fatalf("iter %d: UNSOUND Unsafe verdict\n%s", iter, sys.MarshalText())
			}
			decided++
		}
	}
	if decided < 90 {
		t.Errorf("analyzer decided only %d/120 random small-field circuits", decided)
	}
}

func TestRuleAblationConfigs(t *testing.T) {
	// Num2Bits-style circuit: with R-Bits the verdict is Safe with zero
	// queries; without it the analyzer must fall back to SMT.
	src := `
template Bits() {
    signal input in;
    signal output out[4];
    var lc = 0;
    var e2 = 1;
    for (var i = 0; i < 4; i++) {
        out[i] <-- (in >> i) & 1;
        out[i] * (out[i] - 1) === 0;
        lc += out[i] * e2;
        e2 = e2 + e2;
    }
    lc === in;
}
component main = Bits();
`
	p := compile(t, src)
	full := Analyze(p.System, &Config{Seed: 1})
	if full.Verdict != VerdictSafe || full.Stats.Queries != 0 || full.Stats.BitsUnique != 4 {
		t.Fatalf("full: verdict=%v queries=%d bits=%d", full.Verdict, full.Stats.Queries, full.Stats.BitsUnique)
	}
	noBits := Analyze(p.System, &Config{Seed: 1, DisableBitsRule: true})
	if noBits.Stats.BitsUnique != 0 {
		t.Errorf("noBits still used R-Bits")
	}
	if noBits.Verdict == VerdictUnsafe {
		t.Errorf("ablation produced an unsound unsafe verdict")
	}
	if noBits.Verdict == VerdictSafe && noBits.Stats.Queries == 0 {
		t.Errorf("noBits proved safety without queries — rule not disabled?")
	}
	noRules := Analyze(p.System, &Config{Seed: 1, DisableBitsRule: true, DisableSolveRule: true})
	if noRules.Stats.PropagationUnique != 0 {
		t.Errorf("noRules still propagated %d facts", noRules.Stats.PropagationUnique)
	}
	if noRules.Verdict == VerdictUnsafe {
		t.Errorf("noRules produced an unsound unsafe verdict")
	}
}

func TestTimeoutConfig(t *testing.T) {
	p := compile(t, isZeroSafe)
	r := Analyze(p.System, &Config{Timeout: time.Nanosecond})
	if r.Verdict != VerdictUnknown {
		t.Fatalf("verdict under 1ns timeout = %v", r.Verdict)
	}
}

func TestSliceRadiusConfig(t *testing.T) {
	// A long multiplication chain where out needs info from far away:
	// radius must change the number of constraints per query but not
	// soundness of the outcome.
	src := `
template Chain() {
    signal input a;
    signal output o;
    signal m1;
    signal m2;
    signal m3;
    m1 <== a * a;
    m2 <== m1 * a;
    m3 <== m2 * a;
    o <== m3 * a;
}
component main = Chain();
`
	p := compile(t, src)
	for _, radius := range []int{1, 2, 4} {
		r := Analyze(p.System, &Config{SliceRadius: radius, Seed: 1})
		if r.Verdict != VerdictSafe {
			t.Errorf("radius %d: verdict = %v (%s)", radius, r.Verdict, r.Reason)
		}
	}
}

func TestSMTOnlyBudgetExhaustion(t *testing.T) {
	p := compile(t, isZeroSafe)
	r := Analyze(p.System, &Config{Mode: ModeSMTOnly, GlobalSteps: 1})
	if r.Verdict != VerdictUnknown || r.Reason == "" {
		t.Fatalf("verdict=%v reason=%q", r.Verdict, r.Reason)
	}
}

// slowChainSystem builds o^L = a over F_4093 as a multiplication chain
// (o·o = t₁, t₁·o = t₂, …, t_{L−2}·o = a). With gcd(L, 4092) = 1 the power
// map is a bijection, so every output is in fact unique — but proving it
// requires the solver to enumerate both copies of the chain (millions of
// branches), making the analysis take seconds without a deadline.
func slowChainSystem(t testing.TB) *r1cs.System {
	t.Helper()
	f := ff.MustField(big.NewInt(4093))
	sys := r1cs.NewSystem(f)
	a := sys.AddSignal("a", r1cs.KindInput)
	o := sys.AddSignal("o", r1cs.KindOutput)
	const L = 25
	prev := o
	for i := 1; i < L; i++ {
		next := a
		if i < L-1 {
			next = sys.AddSignal("", r1cs.KindInternal)
		}
		sys.AddConstraint(poly.Var(f, prev), poly.Var(f, o), poly.Var(f, next), "")
		prev = next
	}
	return sys
}

// TestTimeoutEnforcedInsideQuery is the regression test for the deadline
// bugfix: Config.Timeout used to be checked only between queries, so a
// single slow query would overshoot the budget by seconds. The deadline is
// now threaded into the solver's step loop; the analysis must return
// promptly even though its queries would individually run for seconds.
func TestTimeoutEnforcedInsideQuery(t *testing.T) {
	sys := slowChainSystem(t)
	t0 := time.Now()
	r := Analyze(sys, &Config{
		Timeout:     50 * time.Millisecond,
		QuerySteps:  1 << 40, // step budgets must not be what saves us
		GlobalSteps: 1 << 40,
		Seed:        1,
	})
	elapsed := time.Since(t0)
	if elapsed > 2*time.Second {
		t.Fatalf("timeout not enforced inside the query: analysis took %s", elapsed)
	}
	if r.Verdict != VerdictUnknown {
		t.Fatalf("verdict = %v (%s), want unknown under a 50ms budget", r.Verdict, r.Reason)
	}
	if r.Reason == "" {
		t.Error("unknown verdict lacks a reason")
	}
}

// TestSliceQueryCache pins the memo cache: a signal whose slice and
// shared-signal mask are unchanged across re-propagation rounds is answered
// from the cache instead of re-invoking the solver.
func TestSliceQueryCache(t *testing.T) {
	// IsZero (out becomes unique via SMT in round one, forcing a second
	// round) plus a disconnected x² = c component: x's re-query in round two
	// has an identical slice signature, so it must hit the cache.
	f97 := ff.MustField(big.NewInt(97))
	sys := r1cs.NewSystem(f97)
	in := sys.AddSignal("in", r1cs.KindInput)
	c := sys.AddSignal("c", r1cs.KindInput)
	out := sys.AddSignal("out", r1cs.KindOutput)
	x := sys.AddSignal("x", r1cs.KindOutput)
	inv := sys.AddSignal("inv", r1cs.KindInternal)
	// in·inv = 1 − out ; in·out = 0 ; x·x = c
	sys.AddConstraint(poly.Var(f97, in), poly.Var(f97, inv),
		poly.ConstInt(f97, 1).AddTerm(out, f97.NewElement(-1)), "")
	sys.AddConstraint(poly.Var(f97, in), poly.Var(f97, out), poly.NewLinComb(f97), "")
	sys.AddConstraint(poly.Var(f97, x), poly.Var(f97, x), poly.Var(f97, c), "")
	r := Analyze(sys, &Config{Seed: 1})
	// x is genuinely non-unique (x and −x share c = x²).
	if r.Verdict != VerdictUnsafe || r.Counter == nil || r.Counter.Signal != x {
		t.Fatalf("verdict = %v (%s), counter = %+v", r.Verdict, r.Reason, r.Counter)
	}
	if r.Stats.CacheHits == 0 {
		t.Errorf("expected x's unchanged-signature re-query to hit the cache; stats = %+v", r.Stats)
	}
}
