package core

import (
	"sort"

	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/sa"
)

// The static-analysis pre-phase.
//
// Before the SMT rounds of ModeFull, internal/sa runs its solver-free pass
// (dependency graph, abstract interpretation over F_p, pattern detectors)
// and its facts feed the scheduler in three ways:
//
//   - prune: signals living in constraint-graph components without any
//     output never get a slice query — uniqueness facts cannot cross
//     undirected components, so those queries could not influence a verdict;
//   - shrink: signals proven determined by the abstract interpretation are
//     injected into the uniqueness propagator (provenance RuleStatic),
//     enlarging the shared set of every later two-copy query, which shrinks
//     its search space — and outputs proven determined are discharged with
//     no SMT query at all;
//   - order: outputs the reachability analysis flags as definitely
//     under-constrained candidates are queried first in the final
//     whole-circuit stage, so the expensive confirmation effort goes to the
//     most promising targets.
//
// Soundness contract (DESIGN.md §12): facts may only skip solver work after
// sa's replay check (AbsState.Verify) re-derives them against the original
// constraints; if the replay fails, every hint is dropped and the analysis
// proceeds exactly as if the pre-pass had not run. Reachability "unsafe"
// hints are never trusted as verdicts — an Unsafe report still requires a
// confirmed witness pair from confirmCounterexample, exactly as without the
// pre-pass.

// runStaticPrePass executes the pass and folds its facts into the analysis
// state. Called once, before the first query round, only in ModeFull.
func (a *analysis) runStaticPrePass() {
	res := sa.Analyze(a.sys, &sa.Options{
		Obs:       a.cfg.Obs,
		ObsParent: a.span,
		Metrics:   a.cfg.Metrics,
	})
	a.report.Static = res
	if err := res.Abs.Verify(); err != nil {
		// The replay failed: an absint bug or an unsatisfiable system.
		// Either way the facts are not trustworthy; drop every hint and run
		// the full analysis untouched (degradation, never unsoundness).
		a.cfg.Obs.Event(a.span, "core.static.verify_failed", obs.KV("err", err.Error()))
		a.cfg.Metrics.Counter("core.static.verify_failures").Inc()
		return
	}
	rangeAttr := make(map[int]bool, len(res.RangeDetermined))
	for _, id := range res.RangeDetermined {
		rangeAttr[id] = true
	}
	injected, rangeInjected, rangePruned := 0, 0, 0
	for _, id := range res.DeterminedSignals {
		if !a.prop.AddUniqueStatic(id) {
			continue
		}
		injected++
		if !rangeAttr[id] {
			continue
		}
		// A range-domain singleton pins the signal to one value in every
		// satisfying assignment, so both copies of the two-copy encoding
		// agree on it — its uniqueness is decided without the round-1 slice
		// query, and a determined output also skips its final whole-circuit
		// query (same counterexample-preservation argument as the classic
		// facts, DESIGN.md §17).
		rangeInjected++
		rangePruned++
		if a.sys.Signal(id).Kind == r1cs.KindOutput {
			rangePruned++
		}
	}
	a.staticPruned = res.PrunedSet()
	a.staticUnreachable = res.UnreachableOutputs
	a.report.Stats.StaticUnique = injected - rangeInjected
	a.report.Stats.StaticRangeUnique = rangeInjected
	a.report.Stats.StaticRangePruned = rangePruned
	a.cfg.Metrics.Counter("core.static.facts_injected").Add(int64(injected))
	a.cfg.Metrics.Counter("core.static.range_facts_injected").Add(int64(rangeInjected))
	a.cfg.Metrics.Counter("core.static.range_queries_pruned").Add(int64(rangePruned))
	a.cfg.Metrics.Counter("core.static.outputs_discharged").Add(int64(len(res.DeterminedOutputs)))
	a.cfg.Obs.Event(a.span, "core.static.hints",
		obs.KV("injected", injected),
		obs.KV("range_injected", rangeInjected),
		obs.KV("range_pruned", rangePruned),
		obs.KV("outputs_discharged", len(res.DeterminedOutputs)),
		obs.KV("pruned", len(res.PrunedSignals)),
		obs.KV("unreachable_outputs", len(res.UnreachableOutputs)),
		obs.KV("findings", len(res.Findings)))
}

// skipPruned reports whether a slice query for signal s is skipped on the
// static pruning fact, counting the avoided query. Slices never cross
// undirected constraint-graph components, so a pruned signal's query (a) can
// only mention signals of its own output-free component and (b) its UNSAT
// answer could only mark signals of that component unique — facts no output
// query can ever observe. Skipping is therefore verdict- and
// counterexample-preserving, not merely verdict-preserving.
func (a *analysis) skipPruned(s int) bool {
	if a.staticPruned == nil || !a.staticPruned[s] {
		return false
	}
	a.report.Stats.StaticQueriesAvoided++
	a.cfg.Metrics.Counter("core.static.queries_avoided").Inc()
	a.cfg.Obs.Event(a.span, "core.query.avoided",
		obs.KV("sig", s), obs.KV("reason", "static-pruned"))
	return true
}

// orderFinalOutputs returns the outputs still to be decided by the final
// whole-circuit stage, with the reachability pass's under-constraint
// candidates first. Both partitions stay in ascending signal order, so the
// result is deterministic for any worker count.
func (a *analysis) orderFinalOutputs() []int {
	outs := a.sys.Outputs()
	if len(a.staticUnreachable) == 0 {
		return outs
	}
	hinted := make(map[int]bool, len(a.staticUnreachable))
	for _, o := range a.staticUnreachable {
		hinted[o] = true
	}
	ordered := make([]int, 0, len(outs))
	for _, o := range outs {
		if hinted[o] {
			ordered = append(ordered, o)
		}
	}
	rest := make([]int, 0, len(outs)-len(ordered))
	for _, o := range outs {
		if !hinted[o] {
			rest = append(rest, o)
		}
	}
	sort.Ints(ordered)
	sort.Ints(rest)
	return append(ordered, rest...)
}
