package qed2

// One testing.B benchmark per evaluation artifact (Tables 1–4, Figures
// 1–4; see DESIGN.md §5) plus micro-benchmarks for the pipeline stages.
// Each artifact benchmark regenerates the table/figure from scratch and
// logs it, so `go test -bench . -v` doubles as a reproduction run; the
// cmd/qed2bench command produces the same artifacts for interactive use.

import (
	"testing"
	"time"

	"qed2/internal/bench"
	"qed2/internal/core"
	"qed2/internal/smt"

	"math/big"

	"qed2/internal/ff"
	"qed2/internal/poly"
)

// benchConfig is the evaluation configuration shared by the artifact
// benchmarks (tighter than the CLI defaults to keep `go test -bench .`
// tractable; the shape of every result is unaffected).
func benchConfig() core.Config {
	return core.Config{
		QuerySteps:  20_000,
		GlobalSteps: 250_000,
		Timeout:     2 * time.Second,
		Seed:        1,
	}
}

func runSuite(b *testing.B, cfg core.Config) []bench.Result {
	b.Helper()
	return bench.Run(bench.Suite(), &bench.RunOptions{Config: cfg})
}

func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		// Table 1 needs only compilation; analysis budgets are irrelevant.
		cfg := benchConfig()
		cfg.GlobalSteps = 1 // compile-dominated run
		results := runSuite(b, cfg)
		if i == b.N-1 {
			b.Log("\n" + bench.Table1(results))
		}
	}
}

func BenchmarkTable2Main(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSuite(b, benchConfig())
		if i == b.N-1 {
			b.Log("\n" + bench.Table2(results))
		}
	}
}

func BenchmarkTable3Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := runSuite(b, benchConfig())
		propCfg := benchConfig()
		propCfg.Mode = core.ModePropagationOnly
		smtCfg := benchConfig()
		smtCfg.Mode = core.ModeSMTOnly
		smtCfg.Timeout = time.Second // the monolithic baseline mostly times out
		byMode := map[string][]bench.Result{
			"qed2":             full,
			"propagation-only": runSuite(b, propCfg),
			"smt-only":         runSuite(b, smtCfg),
		}
		if i == b.N-1 {
			b.Log("\n" + bench.Table3(byMode, []string{"qed2", "propagation-only", "smt-only"}))
		}
	}
}

func BenchmarkTable4Vulns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSuite(b, benchConfig())
		if i == b.N-1 {
			b.Log("\n" + bench.Table4(results))
		}
	}
}

func BenchmarkFigure1Cactus(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := runSuite(b, benchConfig())
		propCfg := benchConfig()
		propCfg.Mode = core.ModePropagationOnly
		smtCfg := benchConfig()
		smtCfg.Mode = core.ModeSMTOnly
		smtCfg.Timeout = time.Second
		byMode := map[string][]bench.Result{
			"qed2":             full,
			"propagation-only": runSuite(b, propCfg),
			"smt-only":         runSuite(b, smtCfg),
		}
		if i == b.N-1 {
			b.Log("\n" + bench.Figure1(byMode, []string{"qed2", "propagation-only", "smt-only"}))
		}
	}
}

func BenchmarkFigure2Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		byRadius := map[int][]bench.Result{}
		for _, k := range []int{1, 2, 3} {
			cfg := benchConfig()
			cfg.SliceRadius = k
			byRadius[k] = runSuite(b, cfg)
		}
		if i == b.N-1 {
			b.Log("\n" + bench.Figure2(byRadius))
		}
	}
}

func BenchmarkFigure3Scale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results := runSuite(b, benchConfig())
		if i == b.N-1 {
			b.Log("\n" + bench.Figure3(results))
		}
	}
}

// --- micro-benchmarks --------------------------------------------------------

func BenchmarkCompileMiMC91(b *testing.B) {
	inst, ok := bench.ByName(bench.Suite(), "MiMC7(91)")
	if !ok {
		b.Fatal("instance missing")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := inst.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeIsZero(b *testing.B) {
	prog, err := Compile(`
pragma circom 2.0.0;
include "comparators.circom";
component main = IsZero();
`, &CompileOptions{Library: CircomLib()})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := Analyze(prog, &Config{Seed: int64(i)})
		if r.Verdict != Safe {
			b.Fatalf("verdict %v", r.Verdict)
		}
	}
}

func BenchmarkAnalyzeNum2Bits64(b *testing.B) {
	prog, err := Compile(`
pragma circom 2.0.0;
include "bitify.circom";
component main = Num2Bits(64);
`, &CompileOptions{Library: CircomLib()})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := Analyze(prog, &Config{Seed: int64(i)})
		if r.Verdict != Safe {
			b.Fatalf("verdict %v", r.Verdict)
		}
	}
}

func BenchmarkAnalyzeDecoder16(b *testing.B) {
	prog, err := Compile(`
pragma circom 2.0.0;
include "multiplexer.circom";
component main = Decoder(16);
`, &CompileOptions{Library: CircomLib()})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r := Analyze(prog, &Config{Seed: int64(i)})
		if r.Verdict != Unsafe {
			b.Fatalf("verdict %v", r.Verdict)
		}
	}
}

func BenchmarkSolverBooleanChain(b *testing.B) {
	f := ff.BN254()
	p := smt.NewProblem(f)
	// 12 booleans + super-increasing sum pinned to a constant, plus a
	// disequality forcing search.
	sum := poly.ConstInt(f, -1000)
	for v := 0; v < 12; v++ {
		x := poly.Var(f, v)
		p.AddEq(x, x.AddConst(f.NewElement(-1)), poly.NewLinComb(f))
		sum = sum.AddTerm(v, f.FromBig(new(big.Int).Lsh(big.NewInt(1), uint(v))))
	}
	p.AddLinearEq(sum)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := smt.Solve(p, &smt.Options{Seed: int64(i)})
		if out.Status != smt.StatusSat {
			b.Fatalf("status %v", out.Status)
		}
	}
}

func BenchmarkWitnessGeneration(b *testing.B) {
	prog, err := Compile(`
pragma circom 2.0.0;
include "mimc.circom";
component main = MiMC7(91);
`, &CompileOptions{Library: CircomLib()})
	if err != nil {
		b.Fatal(err)
	}
	inputs := map[string]*big.Int{"x_in": big.NewInt(123), "k": big.NewInt(456)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := prog.GenerateWitness(inputs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4RuleAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		full := runSuite(b, benchConfig())
		noBits := benchConfig()
		noBits.DisableBitsRule = true
		noBits.Timeout = time.Second
		noRules := benchConfig()
		noRules.DisableBitsRule = true
		noRules.DisableSolveRule = true
		noRules.Timeout = time.Second
		byConfig := map[string][]bench.Result{
			"full rule set":  full,
			"without R-Bits": runSuite(b, noBits),
			"no rules (SMT)": runSuite(b, noRules),
		}
		if i == b.N-1 {
			b.Log("\n" + bench.Figure4(byConfig, []string{"full rule set", "without R-Bits", "no rules (SMT)"}))
		}
	}
}

// BenchmarkSuiteQueryWorkers1/8 compare the parallel slice-query engine
// against its sequential configuration over the full suite (instances run
// serially so query-level parallelism is the only variable; reports are
// byte-identical either way — see TestSuiteDeterministicAcrossWorkerCounts).
func benchmarkSuiteQueryWorkers(b *testing.B, workers int) {
	insts := bench.Suite()
	cfg := benchConfig()
	cfg.Timeout = 0 // wall-clock cuts would make the two runs incomparable
	cfg.Workers = workers
	for i := 0; i < b.N; i++ {
		bench.Run(insts, &bench.RunOptions{Config: cfg, Workers: 1})
	}
}

func BenchmarkSuiteQueryWorkers1(b *testing.B) { benchmarkSuiteQueryWorkers(b, 1) }
func BenchmarkSuiteQueryWorkers8(b *testing.B) { benchmarkSuiteQueryWorkers(b, 8) }
