// Command qed2vet is a go vet tool (-vettool) running the project's custom
// checks from internal/analyzers:
//
//	go build -o bin/qed2vet ./cmd/qed2vet
//	go vet -vettool=bin/qed2vet ./...
//
// It speaks go vet's unitchecker protocol using only the standard library
// (the go/analysis framework is deliberately not a dependency):
//
//   - `qed2vet -V=full` prints a version line ending in a buildID the go
//     command uses as a cache key;
//   - `qed2vet -flags` prints the JSON list of tool flags (none);
//   - `qed2vet <unit>.cfg` analyzes one package: the config JSON names the
//     package's Go files, the tool prints "file:line:col: message"
//     diagnostics to stderr and exits 2 when it found any, and it always
//     writes the (empty — the checks export no facts) .vetx facts file the
//     go command expects.
//
// The checks are purely syntactic, so packages outside the checked set are
// acknowledged without even being parsed.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"log"
	"os"
	"strings"

	"qed2/internal/analyzers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qed2vet: ")
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(runUnit(args[0]))
	default:
		log.Fatal("usage: qed2vet [-V=full | -flags | unit.cfg]; run via go vet -vettool=/path/to/qed2vet")
	}
}

// printVersion emits the identity line go vet caches analysis results under.
// Hashing the executable means a rebuilt tool (new or changed checks)
// invalidates stale results, exactly like the real unitchecker.
func printVersion() {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("qed2vet version devel comments-go-here buildID=%02x\n", h.Sum(nil))
}

// vetConfig mirrors the fields of go vet's per-package JSON config that the
// tool needs; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit and returns the process exit code:
// 0 clean, 1 driver error, 2 diagnostics found.
func runUnit(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("parsing %s: %v", path, err)
		return 1
	}
	// The go command requires the facts file regardless of the outcome; the
	// checks are local-only, so it is always empty.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			log.Print(err)
			return 1
		}
	}
	// Dependency scan (VetxOnly) or a package no check covers: done already.
	if cfg.VetxOnly || !analyzers.Needed(cfg.ImportPath) {
		return 0
	}
	fset := token.NewFileSet()
	var diags []analyzers.Diagnostic
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			log.Print(err)
			return 1
		}
		diags = append(diags, checkParsed(cfg.ImportPath, fset, f)...)
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	return 2
}

func checkParsed(importPath string, fset *token.FileSet, f *ast.File) []analyzers.Diagnostic {
	return analyzers.CheckFile(importPath, fset, f)
}
