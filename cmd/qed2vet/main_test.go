package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeUnit(t *testing.T, cfg vetConfig, src string) string {
	t.Helper()
	dir := t.TempDir()
	goFile := filepath.Join(dir, "x.go")
	if err := os.WriteFile(goFile, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.GoFiles = []string{goFile}
	if cfg.VetxOutput == "" {
		cfg.VetxOutput = filepath.Join(dir, "out.vetx")
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(cfgPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return cfgPath
}

const offendingSrc = `package ff
import "math/big"
var x big.Int
`

func TestRunUnitReportsDiagnostics(t *testing.T) {
	cfg := vetConfig{ImportPath: "qed2/internal/ff"}
	path := writeUnit(t, cfg, offendingSrc)
	if code := runUnit(path); code != 2 {
		t.Fatalf("exit = %d, want 2 (diagnostics)", code)
	}
}

func TestRunUnitCleanPackage(t *testing.T) {
	cfg := vetConfig{ImportPath: "qed2/internal/ff"}
	path := writeUnit(t, cfg, "package ff\nvar x int\n")
	if code := runUnit(path); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
}

func TestRunUnitWritesVetxEvenForUncheckedPackages(t *testing.T) {
	dir := t.TempDir()
	vetx := filepath.Join(dir, "facts.vetx")
	cfg := vetConfig{ImportPath: "some/other/pkg", VetxOutput: vetx}
	path := writeUnit(t, cfg, offendingSrc)
	if code := runUnit(path); code != 0 {
		t.Fatalf("exit = %d, want 0 (package not in the checked set)", code)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

func TestRunUnitVetxOnlySkipsDiagnostics(t *testing.T) {
	cfg := vetConfig{ImportPath: "qed2/internal/ff", VetxOnly: true}
	path := writeUnit(t, cfg, offendingSrc)
	if code := runUnit(path); code != 0 {
		t.Fatalf("exit = %d, want 0 (VetxOnly dependency scan)", code)
	}
}

func TestRunUnitBadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unit.cfg")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runUnit(path); code != 1 {
		t.Fatalf("exit = %d, want 1 (driver error)", code)
	}
}
