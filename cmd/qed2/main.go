// Command qed2 analyzes a Circom circuit for under-constrained signals.
//
// Usage:
//
//	qed2 [flags] circuit.circom
//
// The circuit must declare a main component. Includes are resolved against
// the files in the circuit's directory and against the bundled circomlib
// subset (so `include "comparators.circom"` works out of the box).
//
// SIGINT/SIGTERM cancel a running analysis gracefully: the partial report
// is still printed (verdict unknown, reason "canceled") and the exit status
// is 2. A second signal force-kills.
//
// Exit status: 0 safe, 1 unsafe, 2 unknown, 3 usage/compile error.
// With -lint: 0 no error-severity findings, 1 at least one error-severity
// finding, 3 usage/compile error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"qed2/internal/bench"
	"qed2/internal/buildinfo"
	"qed2/internal/circom"
	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/sa"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// After the first signal cancels ctx, restore the default handlers
		// so a second signal force-kills a hung shutdown.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit arguments and output streams so tests
// can drive it end to end.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if _, err := faultinject.EnableFromEnv(); err != nil {
		fmt.Fprintln(stderr, "qed2:", err)
		return 3
	}
	fs := flag.NewFlagSet("qed2", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		mode        = fs.String("mode", "qed2", "analysis mode: qed2 | propagation | smt")
		radius      = fs.Int("radius", 2, "slice radius for local uniqueness queries")
		querySteps  = fs.Int64("query-steps", 50_000, "solver step budget per SMT query")
		globalSteps = fs.Int64("global-steps", 5_000_000, "total solver step budget")
		timeout     = fs.Duration("timeout", 0, "wall-clock analysis timeout (0 = none)")
		seed        = fs.Int64("seed", 0, "deterministic solver seed")
		workers     = fs.Int("workers", 0, "parallel slice-query workers (0 = GOMAXPROCS)")
		dumpR1CS    = fs.Bool("r1cs", false, "dump the compiled constraint system and exit")
		statsOnly   = fs.Bool("stats", false, "print circuit statistics and exit")
		lint        = fs.Bool("lint", false, "run only the static-analysis pass and print its findings, then exit")
		lintFormat  = fs.String("format", "", "lint output format: text | json | sarif (default text; -json implies json)")
		noInc       = fs.Bool("no-incremental", false, "disable incremental slice solving (shared base states, learned facts); every query solved from scratch")
		quiet       = fs.Bool("q", false, "print only the verdict")
		jsonOut     = fs.Bool("json", false, "emit the analysis report as JSON")
		witness     = fs.String("witness", "", `generate and check a witness for the given inputs, e.g. "a=3,in[0]=7", then exit`)
		symPath     = fs.String("sym", "", "circom .sym file with signal names for a binary .r1cs input (default: the input path with a .sym extension, if present)")
		trace       = fs.String("trace", "", "write a JSONL trace of the analysis pipeline (spans, counters) to this file")
		metrics     = fs.Bool("metrics", false, "print pipeline counters and histograms to stderr after the analysis")
		version     = fs.Bool("version", false, "print the build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *version {
		fmt.Fprintln(stdout, "qed2", buildinfo.Get().String())
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: qed2 [flags] circuit.circom")
		fs.PrintDefaults()
		return 3
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "qed2:", err)
		return 3
	}
	// A pre-compiled constraint system — this tool's own text dump (as
	// produced by -r1cs) or a binary snarkjs/circom export, auto-detected —
	// can be analyzed directly.
	var prog *circom.Program
	if strings.HasSuffix(path, ".r1cs") {
		if *witness != "" {
			// A dumped constraint system has no witness-generation
			// instructions: those live only in the compiled Circom program.
			fmt.Fprintln(stderr, "qed2: -witness needs a .circom source; a .r1cs dump has no witness-generation instructions")
			return 3
		}
		// Binary exports carry no signal names; the circom .sym companion
		// file restores them (explicit -sym, or <input>.sym by convention).
		var sym []byte
		if r1cs.IsBinaryR1CS(src) {
			sp := *symPath
			if sp == "" {
				cand := strings.TrimSuffix(path, ".r1cs") + ".sym"
				if _, err := os.Stat(cand); err == nil {
					sp = cand
				}
			}
			if sp != "" {
				sym, err = os.ReadFile(sp)
				if err != nil {
					fmt.Fprintln(stderr, "qed2:", err)
					return 3
				}
				fmt.Fprintf(stderr, "qed2: using signal names from %s\n", sp)
			}
		} else if *symPath != "" {
			fmt.Fprintln(stderr, "qed2: -sym only applies to binary .r1cs inputs (the text format carries its own names)")
			return 3
		}
		sys, err := r1cs.ParseAutoWithSym(src, sym)
		if err != nil {
			fmt.Fprintln(stderr, "qed2:", err)
			return 3
		}
		prog = circom.ProgramFromSystem(sys, "(from "+path+")")
	}
	// Library: bundled circomlib subset + sibling files of the input.
	lib := bench.Library()
	dir := filepath.Dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		// Not fatal — the bundled library may still satisfy every include —
		// but the user should know sibling files were not scanned.
		fmt.Fprintf(stderr, "qed2: warning: cannot scan %s for sibling includes: %v\n", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".circom" || e.Name() == filepath.Base(path) {
			continue
		}
		if data, err := os.ReadFile(filepath.Join(dir, e.Name())); err == nil {
			lib[e.Name()] = string(data)
		}
	}
	if prog == nil {
		prog, err = circom.Compile(string(src), &circom.CompileOptions{Library: lib})
		if err != nil {
			fmt.Fprintln(stderr, "qed2: compile error:", err)
			return 3
		}
	}
	sys := prog.System
	if *witness != "" {
		return runWitness(stdout, stderr, prog, *witness)
	}
	if *lint {
		format := *lintFormat
		if format == "" {
			if *jsonOut {
				format = "json"
			} else {
				format = "text"
			}
		}
		return runLint(stdout, stderr, path, prog, format, *quiet)
	}
	if *lintFormat != "" {
		fmt.Fprintln(stderr, "qed2: -format only applies with -lint")
		return 3
	}
	if *dumpR1CS {
		if _, err := sys.WriteTo(stdout); err != nil {
			fmt.Fprintln(stderr, "qed2:", err)
			return 3
		}
		return 0
	}
	st := sys.Stats()
	if !*quiet && !*jsonOut {
		fmt.Fprintf(stdout, "circuit:      %s (main = %s)\n", path, prog.MainTemplate)
		fmt.Fprintf(stdout, "field:        %s\n", sys.Field().Name())
		fmt.Fprintf(stdout, "signals:      %d (%d inputs, %d outputs, %d internal)\n",
			st.Signals, st.Inputs, st.Outputs, st.Internals)
		fmt.Fprintf(stdout, "constraints:  %d (%d linear, %d nonlinear)\n", st.Constraints, st.Linear, st.Nonlinear)
	}
	if *statsOnly {
		return 0
	}

	cfg := &core.Config{
		SliceRadius:        *radius,
		QuerySteps:         *querySteps,
		GlobalSteps:        *globalSteps,
		Timeout:            *timeout,
		Seed:               *seed,
		Workers:            *workers,
		DisableIncremental: *noInc,
	}
	switch *mode {
	case "qed2":
		cfg.Mode = core.ModeFull
	case "propagation":
		cfg.Mode = core.ModePropagationOnly
	case "smt":
		cfg.Mode = core.ModeSMTOnly
	default:
		fmt.Fprintf(stderr, "qed2: unknown mode %q\n", *mode)
		return 3
	}
	var reg *obs.Metrics
	if *trace != "" || *metrics {
		reg = obs.NewMetrics()
		cfg.Metrics = reg
	}
	var tracer *obs.Tracer
	if *trace != "" {
		tracer, err = obs.NewFile(*trace)
		if err != nil {
			fmt.Fprintln(stderr, "qed2:", err)
			return 3
		}
		tracer.AttachMetrics(reg)
		bi := buildinfo.Get()
		tracer.Meta("qed2",
			obs.Attr{Key: "version", Val: bi.Version},
			obs.Attr{Key: "revision", Val: bi.Revision},
			obs.Attr{Key: "go", Val: bi.GoVersion})
		cfg.Obs = tracer
	}
	t0 := time.Now()
	report := core.AnalyzeContext(ctx, sys, cfg)
	if err := tracer.Close(); err != nil {
		fmt.Fprintln(stderr, "qed2: writing trace:", err)
		return 3
	}
	if *metrics {
		reg.Render(stderr)
	}
	if *jsonOut {
		if err := writeJSONReport(stdout, path, prog, report); err != nil {
			fmt.Fprintln(stderr, "qed2:", err)
			return 3
		}
	} else if *quiet {
		fmt.Fprintln(stdout, report.Verdict)
	} else {
		fmt.Fprintf(stdout, "\nverdict:      %s", report.Verdict)
		if report.Reason != "" {
			fmt.Fprintf(stdout, "  (%s)", report.Reason)
		}
		fmt.Fprintln(stdout)
		fmt.Fprintf(stdout, "analysis:     %s, %d queries (%d cached), %d solver steps, %d workers\n",
			time.Since(t0).Round(time.Millisecond), report.Stats.Queries, report.Stats.CacheHits,
			report.Stats.SolverSteps, report.Stats.Workers)
		fmt.Fprintf(stdout, "uniqueness:   %d/%d signals proven unique (%d by propagation, %d by SMT)\n",
			report.Stats.UniqueTotal, st.Signals, report.Stats.PropagationUnique, report.Stats.SMTUnique)
		if s := report.Stats; s.StaticUnique > 0 || s.StaticRangeUnique > 0 || s.StaticQueriesAvoided > 0 {
			fmt.Fprintf(stdout, "static pass:  %d extra signals proven determined (%d by range domains), %d SMT queries avoided (%d range-pruned)\n",
				s.StaticUnique+s.StaticRangeUnique, s.StaticRangeUnique,
				s.StaticQueriesAvoided+s.StaticRangePruned, s.StaticRangePruned)
		}
		if s := report.Stats; s.BatchGroups > 0 || s.IncrementalFallbacks > 0 {
			fmt.Fprintf(stdout, "incremental:  %d batch groups, %d reused queries, %d extends, %d fallbacks, %d base steps, %d facts learned\n",
				s.BatchGroups, s.IncrementalReuses, s.IncrementalExtends,
				s.IncrementalFallbacks, s.IncrementalBaseSteps, s.LearnedFacts)
		}
		if ce := report.Counter; ce != nil {
			printCounterexample(stdout, prog, ce)
		}
	}
	switch report.Verdict {
	case core.VerdictSafe:
		return 0
	case core.VerdictUnsafe:
		return 1
	default:
		return 2
	}
}

// runLint executes only the static-analysis pass and prints its findings:
// one "loc: severity[detector]: message" line each (format "text"), a JSON
// document (format "json", also selected by -json), or a SARIF 2.1.0 log
// (format "sarif"). Exit status: 0 when no error-severity finding, 1
// otherwise. A lint error is a strong under-constraint candidate, but only
// the full analysis (without -lint) can confirm it with a witness pair.
func runLint(stdout, stderr io.Writer, path string, prog *circom.Program, format string, quiet bool) int {
	res := sa.AnalyzeProgram(prog, nil)
	errs, warns, infos := 0, 0, 0
	for _, f := range res.Findings {
		switch f.Severity {
		case sa.SeverityError:
			errs++
		case sa.SeverityWarning:
			warns++
		default:
			infos++
		}
	}
	switch format {
	case "sarif":
		if err := writeSARIF(stdout, path, res.Findings); err != nil {
			fmt.Fprintln(stderr, "qed2:", err)
			return 3
		}
	case "json":
		out := jsonLint{
			Circuit:  path,
			Main:     prog.MainTemplate,
			Findings: res.Findings,
			Errors:   errs,
			Warnings: warns,
			Infos:    infos,
		}
		if out.Findings == nil {
			out.Findings = []sa.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "qed2:", err)
			return 3
		}
	case "text":
		for _, f := range res.Findings {
			if quiet && f.Severity < sa.SeverityWarning {
				continue
			}
			fmt.Fprintln(stdout, f.String())
		}
		if !quiet {
			fmt.Fprintf(stdout, "%d findings (%d errors, %d warnings, %d infos)\n",
				len(res.Findings), errs, warns, infos)
		}
	default:
		fmt.Fprintf(stderr, "qed2: unknown lint format %q (want text, json, or sarif)\n", format)
		return 3
	}
	if errs > 0 {
		return 1
	}
	return 0
}

// jsonLint is the machine-readable lint report.
type jsonLint struct {
	Circuit  string       `json:"circuit"`
	Main     string       `json:"main_template"`
	Findings []sa.Finding `json:"findings"`
	Errors   int          `json:"errors"`
	Warnings int          `json:"warnings"`
	Infos    int          `json:"infos"`
}

// printCounterexample renders a checked witness pair compactly: the shared
// inputs, then every signal on which the two witnesses differ.
func printCounterexample(w io.Writer, prog *circom.Program, ce *core.CounterExample) {
	sys := prog.System
	f := sys.Field()
	fmt.Fprintln(w, "\ncounterexample: two witnesses agree on all inputs but differ on output",
		sys.Name(ce.Signal))
	fmt.Fprintln(w, "  inputs:")
	for _, name := range prog.SortedInputNames() {
		id := prog.InputNames[name]
		fmt.Fprintf(w, "    %-20s = %s\n", name, f.String(ce.W1[id]))
	}
	fmt.Fprintln(w, "  differing signals:")
	for id := 1; id < sys.NumSignals(); id++ {
		if ce.W1[id] != ce.W2[id] {
			fmt.Fprintf(w, "    %-20s = %s   vs   %s\n",
				sys.Name(id), f.String(ce.W1[id]), f.String(ce.W2[id]))
		}
	}
}

// runWitness parses "name=value,..." inputs, generates a witness, checks it
// against every constraint, and prints the outputs.
func runWitness(stdout, stderr io.Writer, prog *circom.Program, spec string) int {
	inputs := map[string]*big.Int{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			fmt.Fprintf(stderr, "qed2: malformed input assignment %q (want name=value)\n", part)
			return 3
		}
		v, parsed := new(big.Int).SetString(strings.TrimSpace(val), 0)
		if !parsed {
			fmt.Fprintf(stderr, "qed2: malformed value in %q\n", part)
			return 3
		}
		inputs[strings.TrimSpace(name)] = v
	}
	w, err := prog.GenerateWitness(inputs)
	if err != nil {
		fmt.Fprintln(stderr, "qed2: witness generation failed:", err)
		return 3
	}
	if err := prog.System.CheckWitness(w); err != nil {
		fmt.Fprintln(stderr, "qed2: generated witness violates constraints (under-constrained hint logic?):", err)
		return 3
	}
	f := prog.System.Field()
	fmt.Fprintln(stdout, "witness satisfies all constraints")
	for _, name := range prog.SortedOutputNames() {
		fmt.Fprintf(stdout, "  %-20s = %s\n", name, f.String(w[prog.OutputNames[name]]))
	}
	return 0
}

// jsonReport is the machine-readable analysis summary.
type jsonReport struct {
	Circuit string `json:"circuit"`
	Main    string `json:"main_template"`
	Verdict string `json:"verdict"`
	Reason  string `json:"reason,omitempty"`
	// Degraded is non-empty ("canceled" / "internal-error") when an unknown
	// verdict is a fault-tolerance artifact rather than a budget outcome.
	Degraded    string       `json:"degraded,omitempty"`
	Signals     int          `json:"signals"`
	Constraints int          `json:"constraints"`
	Stats       jsonStats    `json:"stats"`
	Counter     *jsonCounter `json:"counterexample,omitempty"`
}

type jsonStats struct {
	UniqueTotal       int   `json:"unique_signals"`
	PropagationUnique int   `json:"by_propagation"`
	BitsUnique        int   `json:"by_bits_rule"`
	SMTUnique         int   `json:"by_smt"`
	Queries           int   `json:"smt_queries"`
	CacheHits         int   `json:"cache_hits"`
	SolverSteps       int64 `json:"solver_steps"`
	Workers           int   `json:"workers"`
	DurationMS        int64 `json:"duration_ms"`
	// The static pre-pass's contribution (zero when the pass is disabled or
	// not in qed2 mode): classic-rule facts, range-domain facts, queries
	// avoided by component pruning, and queries pruned by range facts.
	StaticUnique         int `json:"static_unique"`
	StaticRangeUnique    int `json:"static_range_unique"`
	StaticQueriesAvoided int `json:"static_queries_avoided"`
	StaticRangePruned    int `json:"static_range_pruned"`
	// Incremental-solving attribution (all zero with -no-incremental).
	BatchGroups          int   `json:"batch_groups"`
	IncrementalReuses    int   `json:"incremental_reuses"`
	IncrementalExtends   int   `json:"incremental_extends"`
	IncrementalFallbacks int   `json:"incremental_fallbacks"`
	IncrementalBaseSteps int64 `json:"incremental_base_steps"`
	LearnedFacts         int   `json:"learned_facts"`
	FactsInjected        int   `json:"facts_injected"`
}

type jsonCounter struct {
	Output  string            `json:"output"`
	Inputs  map[string]string `json:"inputs"`
	Values  [2]string         `json:"values"`
	Differs []string          `json:"differing_signals"`
}

func writeJSONReport(w io.Writer, path string, prog *circom.Program, report *core.Report) error {
	sys := prog.System
	f := sys.Field()
	out := jsonReport{
		Circuit:     path,
		Main:        prog.MainTemplate,
		Verdict:     report.Verdict.String(),
		Reason:      report.Reason,
		Degraded:    string(report.Degraded),
		Signals:     report.Stats.SignalsTotal,
		Constraints: report.Stats.Constraints,
		Stats: jsonStats{
			UniqueTotal:          report.Stats.UniqueTotal,
			PropagationUnique:    report.Stats.PropagationUnique,
			BitsUnique:           report.Stats.BitsUnique,
			SMTUnique:            report.Stats.SMTUnique,
			Queries:              report.Stats.Queries,
			CacheHits:            report.Stats.CacheHits,
			SolverSteps:          report.Stats.SolverSteps,
			Workers:              report.Stats.Workers,
			DurationMS:           report.Stats.Duration.Milliseconds(),
			StaticUnique:         report.Stats.StaticUnique,
			StaticRangeUnique:    report.Stats.StaticRangeUnique,
			StaticQueriesAvoided: report.Stats.StaticQueriesAvoided,
			StaticRangePruned:    report.Stats.StaticRangePruned,
			BatchGroups:          report.Stats.BatchGroups,
			IncrementalReuses:    report.Stats.IncrementalReuses,
			IncrementalExtends:   report.Stats.IncrementalExtends,
			IncrementalFallbacks: report.Stats.IncrementalFallbacks,
			IncrementalBaseSteps: report.Stats.IncrementalBaseSteps,
			LearnedFacts:         report.Stats.LearnedFacts,
			FactsInjected:        report.Stats.FactsInjected,
		},
	}
	if ce := report.Counter; ce != nil {
		jc := &jsonCounter{
			Output: sys.Name(ce.Signal),
			Inputs: map[string]string{},
			Values: [2]string{f.String(ce.W1[ce.Signal]), f.String(ce.W2[ce.Signal])},
		}
		for name, id := range prog.InputNames {
			jc.Inputs[name] = f.String(ce.W1[id])
		}
		for id := 1; id < sys.NumSignals(); id++ {
			if ce.W1[id] != ce.W2[id] {
				jc.Differs = append(jc.Differs, sys.Name(id))
			}
		}
		out.Counter = jc
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
