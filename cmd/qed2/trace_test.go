package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// The montgomery-bug example circuit: circomlib's MontgomeryDouble, the
// paper finding the examples/ directory reproduces. The include resolves
// against the bundled circomlib subset.
const montgomerySrc = `
pragma circom 2.0.0;
include "montgomery.circom";
component main = MontgomeryDouble();
`

type traceLine struct {
	Ev         string                     `json:"ev"`
	ID         int64                      `json:"id"`
	Parent     int64                      `json:"parent"`
	Name       string                     `json:"name"`
	Counters   map[string]int64           `json:"counters"`
	Histograms map[string]json.RawMessage `json:"histograms"`
}

func readTrace(t *testing.T, path string) []traceLine {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []traceLine
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var l traceLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("invalid trace line %q: %v", sc.Text(), err)
		}
		lines = append(lines, l)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// TestCLITraceReconcilesWithStats is the observability acceptance check:
// the spans and counters in a -trace file must reconcile with the numbers
// the report itself prints. A trace that disagrees with the report would be
// worse than no trace at all.
func TestCLITraceReconcilesWithStats(t *testing.T) {
	path := writeCircuit(t, "mont.circom", montgomerySrc)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, errw := runCLI(t, "-trace", tracePath, "-json", "-seed", "1", "-workers", "1", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (unsafe)\n%s%s", code, out, errw)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON report: %v", err)
	}
	if rep.Verdict != "unsafe" {
		t.Fatalf("verdict = %s, want unsafe", rep.Verdict)
	}

	lines := readTrace(t, tracePath)
	if len(lines) == 0 {
		t.Fatal("trace file is empty")
	}

	// Structural checks: one core.analyze span bracketing the run, and a
	// final metrics record.
	spanEnds := map[string]int{}
	events := map[string]int{}
	var metrics *traceLine
	for i := range lines {
		l := &lines[i]
		switch l.Ev {
		case "span_end":
			spanEnds[l.Name]++
		case "event":
			events[l.Name]++
		case "metrics":
			metrics = l
		}
	}
	if spanEnds["core.analyze"] != 1 {
		t.Errorf("core.analyze span_end count = %d, want 1", spanEnds["core.analyze"])
	}
	if metrics == nil {
		t.Fatal("trace has no final metrics record")
	}
	if lines[len(lines)-1].Ev != "metrics" {
		t.Errorf("metrics record is not the last trace line")
	}

	// Reconciliation: trace spans and counters vs the printed report stats.
	// The trace records every solver invocation; the report accounts only
	// queries merged before the verdict, and a confirmed counterexample
	// returns early (see DESIGN §10) — so on this unsafe circuit the trace
	// may exceed the report, never the reverse.
	c := metrics.Counters
	if got := spanEnds["core.query"]; int64(got) != c["smt.queries"] {
		t.Errorf("core.query span count = %d, smt.queries counter = %d", got, c["smt.queries"])
	}
	if got := spanEnds["smt.solve"]; int64(got) != c["smt.queries"] {
		t.Errorf("smt.solve span count = %d, smt.queries counter = %d", got, c["smt.queries"])
	}
	if c["smt.queries"] < int64(rep.Stats.Queries) {
		t.Errorf("smt.queries counter = %d < %d accounted queries", c["smt.queries"], rep.Stats.Queries)
	}
	if c["smt.steps"] < rep.Stats.SolverSteps {
		t.Errorf("smt.steps counter = %d < %d accounted steps", c["smt.steps"], rep.Stats.SolverSteps)
	}
	if got := events["core.cache_hit"]; got != rep.Stats.CacheHits {
		t.Errorf("core.cache_hit event count = %d, report says %d cache hits", got, rep.Stats.CacheHits)
	}
	if c["core.cache.hits"] != int64(rep.Stats.CacheHits) {
		t.Errorf("core.cache.hits counter = %d, report says %d", c["core.cache.hits"], rep.Stats.CacheHits)
	}
	if c["uniq.external"] != int64(rep.Stats.SMTUnique) {
		t.Errorf("uniq.external counter = %d, report says %d by SMT", c["uniq.external"], rep.Stats.SMTUnique)
	}
	if c["uniq.rule.bits.resolved"] != int64(rep.Stats.BitsUnique) {
		t.Errorf("uniq.rule.bits.resolved = %d, report says %d by bits rule", c["uniq.rule.bits.resolved"], rep.Stats.BitsUnique)
	}
	// PropagationUnique = signals resolved by the syntactic rules (seeded
	// constants are free facts, not rule firings).
	prop := c["uniq.rule.solve.fired"] + c["uniq.rule.bits.resolved"]
	if prop != int64(rep.Stats.PropagationUnique) {
		t.Errorf("uniq rule counters sum to %d, report says %d by propagation",
			prop, rep.Stats.PropagationUnique)
	}
	if spanEnds["core.confirm"] == 0 {
		t.Error("unsafe verdict with no core.confirm span")
	}
	// Every SMT status tally must sum to the query count.
	if sum := c["smt.status.sat"] + c["smt.status.unsat"] + c["smt.status.unknown"]; sum != c["smt.queries"] {
		t.Errorf("smt status tallies sum to %d, want %d queries", sum, c["smt.queries"])
	}
	if _, ok := metrics.Histograms["smt.query.steps"]; !ok {
		t.Error("metrics record missing smt.query.steps histogram")
	}
}

// TestCLITraceExactReconciliationSafeCircuit: on a safe circuit nothing is
// discarded early, so the trace counters must equal the report exactly —
// query count, solver steps, and cache hits.
func TestCLITraceExactReconciliationSafeCircuit(t *testing.T) {
	// IsZero is properly constrained but needs SMT (the inv hint defeats
	// pure propagation), so the run exercises real queries.
	path := writeCircuit(t, "iszero.circom", `
pragma circom 2.0.0;
include "comparators.circom";
component main = IsZero();
`)
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	code, out, errw := runCLI(t, "-trace", tracePath, "-json", "-seed", "1", "-workers", "1", path)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (safe)\n%s%s", code, out, errw)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON report: %v", err)
	}
	if rep.Stats.Queries == 0 {
		t.Fatal("expected a circuit that needs SMT queries")
	}
	lines := readTrace(t, tracePath)
	spanEnds := map[string]int{}
	var c map[string]int64
	for _, l := range lines {
		if l.Ev == "span_end" {
			spanEnds[l.Name]++
		}
		if l.Ev == "metrics" {
			c = l.Counters
		}
	}
	if spanEnds["core.query"] != rep.Stats.Queries {
		t.Errorf("core.query span count = %d, report says %d queries", spanEnds["core.query"], rep.Stats.Queries)
	}
	if c["smt.queries"] != int64(rep.Stats.Queries) {
		t.Errorf("smt.queries = %d, report says %d", c["smt.queries"], rep.Stats.Queries)
	}
	if c["smt.steps"] != rep.Stats.SolverSteps {
		t.Errorf("smt.steps = %d, report says %d solver steps", c["smt.steps"], rep.Stats.SolverSteps)
	}
	if c["core.cache.hits"] != int64(rep.Stats.CacheHits) {
		t.Errorf("core.cache.hits = %d, report says %d", c["core.cache.hits"], rep.Stats.CacheHits)
	}
}

// TestCLITraceDeterministicAtOneWorker: two workers=1 runs of the same
// circuit and seed must produce byte-identical traces once timestamps are
// stripped — the determinism contract DESIGN §10 documents.
func TestCLITraceDeterministicAtOneWorker(t *testing.T) {
	path := writeCircuit(t, "bad.circom", buggySrc)
	var shapes [2][]string
	for i := range shapes {
		tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
		code, out, _ := runCLI(t, "-trace", tracePath, "-seed", "1", "-workers", "1", "-q", path)
		if code != 1 {
			t.Fatalf("run %d: exit = %d\n%s", i, code, out)
		}
		for _, l := range readTrace(t, tracePath) {
			// Shape = event kind + name + parent link; timestamps and
			// durations are wall clock and excluded from the contract.
			shapes[i] = append(shapes[i], l.Ev+"/"+l.Name)
		}
	}
	if len(shapes[0]) != len(shapes[1]) {
		t.Fatalf("trace lengths differ: %d vs %d", len(shapes[0]), len(shapes[1]))
	}
	for j := range shapes[0] {
		if shapes[0][j] != shapes[1][j] {
			t.Fatalf("trace shape diverges at line %d: %q vs %q", j, shapes[0][j], shapes[1][j])
		}
	}
}

// TestCLIUnknownExitCode: exit status 2 distinguishes "ran out of budget"
// from both safe (0) and unsafe (1), so scripts can retry with larger
// budgets. A one-step solver budget cannot decide the buggy circuit.
func TestCLIUnknownExitCode(t *testing.T) {
	path := writeCircuit(t, "bad.circom", buggySrc)
	code, out, _ := runCLI(t, "-query-steps", "1", "-global-steps", "1", "-q", path)
	if code != 2 {
		t.Fatalf("exit = %d, want 2 (unknown)\n%s", code, out)
	}
	if got := string(out); got != "unknown\n" {
		t.Errorf("quiet output = %q, want unknown", got)
	}
}
