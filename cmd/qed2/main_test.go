package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCircuit(t *testing.T, name, src string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const safeSrc = `
pragma circom 2.0.0;
template Mul() {
    signal input a;
    signal input b;
    signal output c;
    c <== a*b;
}
component main = Mul();
`

const buggySrc = `
pragma circom 2.0.0;
template Bad() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
}
component main = Bad();
`

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(context.Background(), args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestCLISafeCircuit(t *testing.T) {
	path := writeCircuit(t, "mul.circom", safeSrc)
	code, out, _ := runCLI(t, path)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "verdict:      safe") {
		t.Errorf("output missing safe verdict:\n%s", out)
	}
}

func TestCLIUnsafeCircuitExitCodeAndCounterexample(t *testing.T) {
	path := writeCircuit(t, "bad.circom", buggySrc)
	code, out, _ := runCLI(t, "-seed", "1", path)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out)
	}
	for _, want := range []string{"unsafe", "counterexample", "differing signals"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIQuiet(t *testing.T) {
	path := writeCircuit(t, "mul.circom", safeSrc)
	code, out, _ := runCLI(t, "-q", path)
	if code != 0 || strings.TrimSpace(out) != "safe" {
		t.Fatalf("quiet output = %q (exit %d)", out, code)
	}
}

func TestCLIJSON(t *testing.T) {
	path := writeCircuit(t, "bad.circom", buggySrc)
	code, out, _ := runCLI(t, "-json", "-seed", "1", path)
	if code != 1 {
		t.Fatalf("exit = %d", code)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if rep.Verdict != "unsafe" || rep.Counter == nil || rep.Counter.Output == "" {
		t.Errorf("json report incomplete: %+v", rep)
	}
	if rep.Counter.Values[0] == rep.Counter.Values[1] {
		t.Error("counterexample values equal")
	}
}

func TestCLIWitness(t *testing.T) {
	path := writeCircuit(t, "mul.circom", safeSrc)
	code, out, _ := runCLI(t, "-witness", "a=6,b=7", path)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out)
	}
	if !strings.Contains(out, "c") || !strings.Contains(out, "42") {
		t.Errorf("witness output wrong:\n%s", out)
	}
	// Malformed specs.
	if code, _, _ := runCLI(t, "-witness", "a", path); code != 3 {
		t.Error("malformed witness spec accepted")
	}
	if code, _, _ := runCLI(t, "-witness", "a=zebra", path); code != 3 {
		t.Error("malformed witness value accepted")
	}
}

func TestCLIR1CSDumpAndReanalyze(t *testing.T) {
	path := writeCircuit(t, "mul.circom", safeSrc)
	code, dump, _ := runCLI(t, "-r1cs", path)
	if code != 0 || !strings.HasPrefix(dump, "r1cs v1") {
		t.Fatalf("dump failed (exit %d):\n%s", code, dump)
	}
	r1csPath := filepath.Join(filepath.Dir(path), "mul.r1cs")
	if err := os.WriteFile(r1csPath, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, r1csPath)
	if code != 0 || !strings.Contains(out, "safe") {
		t.Fatalf("re-analysis of .r1cs failed (exit %d):\n%s", code, out)
	}
}

func TestCLIWitnessOnR1CSRejected(t *testing.T) {
	path := writeCircuit(t, "mul.circom", safeSrc)
	code, dump, _ := runCLI(t, "-r1cs", path)
	if code != 0 {
		t.Fatalf("dump failed (exit %d)", code)
	}
	r1csPath := filepath.Join(filepath.Dir(path), "mul.r1cs")
	if err := os.WriteFile(r1csPath, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := runCLI(t, "-witness", "a=6,b=7", r1csPath)
	if code != 3 {
		t.Fatalf("exit = %d, want 3 (usage error)", code)
	}
	if !strings.Contains(errw, "witness") || !strings.Contains(errw, ".r1cs") {
		t.Errorf("error message unhelpful: %q", errw)
	}
}

func TestCLIWorkersFlag(t *testing.T) {
	path := writeCircuit(t, "bad.circom", buggySrc)
	var reports [2]jsonReport
	for i, w := range []string{"1", "8"} {
		code, out, _ := runCLI(t, "-json", "-seed", "1", "-workers", w, path)
		if code != 1 {
			t.Fatalf("workers=%s: exit = %d, want 1", w, code)
		}
		if err := json.Unmarshal([]byte(out), &reports[i]); err != nil {
			t.Fatalf("workers=%s: invalid JSON: %v", w, err)
		}
	}
	if reports[0].Stats.Workers != 1 || reports[1].Stats.Workers != 8 {
		t.Errorf("workers not recorded: %d, %d", reports[0].Stats.Workers, reports[1].Stats.Workers)
	}
	// Reports must be identical apart from timing and the worker count.
	for i := range reports {
		reports[i].Stats.Workers = 0
		reports[i].Stats.DurationMS = 0
	}
	a, _ := json.Marshal(reports[0])
	b, _ := json.Marshal(reports[1])
	if string(a) != string(b) {
		t.Errorf("reports differ across worker counts:\n%s\n%s", a, b)
	}
}

func TestCLIStatsOnly(t *testing.T) {
	path := writeCircuit(t, "mul.circom", safeSrc)
	code, out, _ := runCLI(t, "-stats", path)
	if code != 0 || !strings.Contains(out, "constraints:") || strings.Contains(out, "verdict") {
		t.Fatalf("stats output wrong (exit %d):\n%s", code, out)
	}
}

func TestCLIModes(t *testing.T) {
	path := writeCircuit(t, "mul.circom", safeSrc)
	for _, mode := range []string{"qed2", "propagation", "smt"} {
		code, _, _ := runCLI(t, "-mode", mode, "-q", path)
		if code != 0 {
			t.Errorf("mode %s exit = %d", mode, code)
		}
	}
	if code, _, errw := runCLI(t, "-mode", "warp", path); code != 3 || !strings.Contains(errw, "unknown mode") {
		t.Error("bad mode accepted")
	}
}

func TestCLIErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 3 {
		t.Error("missing file accepted")
	}
	if code, _, _ := runCLI(t, "/nonexistent/x.circom"); code != 3 {
		t.Error("nonexistent file accepted")
	}
	bad := writeCircuit(t, "bad.circom", "template {")
	if code, _, errw := runCLI(t, bad); code != 3 || !strings.Contains(errw, "compile error") {
		t.Error("parse error not reported")
	}
	badR1CS := writeCircuit(t, "bad.r1cs", "nonsense")
	if code, _, _ := runCLI(t, badR1CS); code != 3 {
		t.Error("bad .r1cs accepted")
	}
}

func TestCLISiblingIncludes(t *testing.T) {
	dir := t.TempDir()
	lib := filepath.Join(dir, "lib.circom")
	if err := os.WriteFile(lib, []byte(`
template Pass() { signal input a; signal output b; b <== a; }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	mainPath := filepath.Join(dir, "main.circom")
	if err := os.WriteFile(mainPath, []byte(`
include "lib.circom";
component main = Pass();
`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errw := runCLI(t, "-q", mainPath)
	if code != 0 {
		t.Fatalf("exit %d: %s%s", code, out, errw)
	}
}

const freeOutputSrc = `
pragma circom 2.0.0;
template Free() {
    signal input in;
    signal output out;
    out <-- in * in;
}
component main = Free();
`

func TestCLILint(t *testing.T) {
	path := writeCircuit(t, "free.circom", freeOutputSrc)
	code, out, _ := runCLI(t, "-lint", path)
	if code != 1 {
		t.Fatalf("lint exit = %d, want 1 (error finding)\n%s", code, out)
	}
	for _, want := range []string{"error[unconstrained-hint]", "Free:", "findings"} {
		if !strings.Contains(out, want) {
			t.Errorf("lint output missing %q:\n%s", want, out)
		}
	}
	// A clean circuit lints clean.
	code, out, _ = runCLI(t, "-lint", writeCircuit(t, "mul.circom", safeSrc))
	if code != 0 || !strings.Contains(out, "0 errors") {
		t.Fatalf("clean lint exit = %d:\n%s", code, out)
	}
}

func TestCLILintJSONAndDeterminism(t *testing.T) {
	path := writeCircuit(t, "free.circom", freeOutputSrc)
	var runs [2]string
	for i := range runs {
		code, out, _ := runCLI(t, "-lint", "-json", path)
		if code != 1 {
			t.Fatalf("exit = %d, want 1", code)
		}
		runs[i] = out
	}
	if runs[0] != runs[1] {
		t.Errorf("lint JSON not deterministic:\n%s\n%s", runs[0], runs[1])
	}
	var rep jsonLint
	if err := json.Unmarshal([]byte(runs[0]), &rep); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, runs[0])
	}
	if rep.Errors == 0 || len(rep.Findings) == 0 {
		t.Fatalf("json lint report incomplete: %+v", rep)
	}
	f := rep.Findings[0]
	if f.Detector == "" || f.SeverityName == "" || f.Loc == "" || f.Message == "" {
		t.Errorf("finding missing fields: %+v", f)
	}
}

func TestCLILintOnR1CSDump(t *testing.T) {
	// Source locations and <-- metadata survive the .r1cs round trip, so
	// linting a dump finds the same unconstrained output, source-located.
	path := writeCircuit(t, "free.circom", freeOutputSrc)
	code, dump, _ := runCLI(t, "-r1cs", path)
	if code != 0 {
		t.Fatalf("dump failed (exit %d)", code)
	}
	r1csPath := filepath.Join(filepath.Dir(path), "free.r1cs")
	if err := os.WriteFile(r1csPath, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-lint", r1csPath)
	if code != 1 || !strings.Contains(out, "error[unconstrained-hint]") {
		t.Fatalf("lint on .r1cs exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "Free:") {
		t.Errorf("source location lost in .r1cs round trip:\n%s", out)
	}
}

func TestCLIStaticStatsInJSON(t *testing.T) {
	// A pure Num2Bits-style circuit is discharged by propagation; the static
	// pre-pass runs alongside and its stats fields must be present (zero is
	// fine) and the verdict unchanged.
	path := writeCircuit(t, "mul.circom", safeSrc)
	code, out, _ := runCLI(t, "-json", path)
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	if !strings.Contains(out, "static_unique") || !strings.Contains(out, "static_queries_avoided") {
		t.Errorf("json stats missing static fields:\n%s", out)
	}
}

func TestCLICanceledContextYieldsUnknown(t *testing.T) {
	// The buggy circuit needs SMT queries to decide; a pre-canceled context
	// skips them all, so the verdict degrades to unknown (canceled). (A
	// circuit decided purely by propagation would still report its sound
	// verdict — cancellation never revokes completed proofs.)
	path := writeCircuit(t, "bad.circom", buggySrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errw bytes.Buffer
	code := run(ctx, []string{path}, &out, &errw)
	if code != 2 {
		t.Fatalf("canceled run exit = %d, want 2\n%s%s", code, out.String(), errw.String())
	}
	if !strings.Contains(out.String(), "unknown") || !strings.Contains(out.String(), "canceled") {
		t.Fatalf("canceled run output missing unknown (canceled):\n%s", out.String())
	}
}

func TestCLIVersionFlag(t *testing.T) {
	code, out, _ := runCLI(t, "-version")
	if code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	if !strings.HasPrefix(out, "qed2 ") || !strings.Contains(out, "go1") {
		t.Fatalf("unexpected -version output %q", out)
	}
}

func TestCLILintSARIF(t *testing.T) {
	path := writeCircuit(t, "free.circom", freeOutputSrc)
	code, out, _ := runCLI(t, "-lint", "-format", "sarif", path)
	if code != 1 {
		t.Fatalf("sarif lint exit = %d, want 1 (error finding)\n%s", code, out)
	}
	// Decode into untyped maps so the assertions pin the exact JSON field
	// spelling the SARIF 2.1.0 schema requires, not our Go struct tags.
	var doc map[string]any
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("invalid SARIF JSON: %v\n%s", err, out)
	}
	if s, _ := doc["$schema"].(string); !strings.Contains(s, "sarif-2.1.0") {
		t.Errorf("$schema = %q, want a sarif-2.1.0 schema URI", s)
	}
	if v, _ := doc["version"].(string); v != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", v)
	}
	runs, _ := doc["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("runs = %v, want exactly one", doc["runs"])
	}
	run := runs[0].(map[string]any)
	driver, _ := run["tool"].(map[string]any)["driver"].(map[string]any)
	if name, _ := driver["name"].(string); name != "qed2" {
		t.Errorf("tool.driver.name = %q, want qed2", name)
	}
	rules, _ := driver["rules"].([]any)
	if len(rules) == 0 {
		t.Fatal("tool.driver.rules is empty")
	}
	ruleIDs := make([]string, len(rules))
	for i, r := range rules {
		ruleIDs[i], _ = r.(map[string]any)["id"].(string)
	}
	results, _ := run["results"].([]any)
	if len(results) == 0 {
		t.Fatal("results is empty")
	}
	sawHint := false
	for _, raw := range results {
		res := raw.(map[string]any)
		id, _ := res["ruleId"].(string)
		if id == "" {
			t.Fatalf("result missing ruleId: %v", res)
		}
		if id == "unconstrained-hint" {
			sawHint = true
		}
		idx, ok := res["ruleIndex"].(float64)
		if !ok || int(idx) < 0 || int(idx) >= len(ruleIDs) || ruleIDs[int(idx)] != id {
			t.Errorf("ruleIndex %v does not point at rule %q in %v", res["ruleIndex"], id, ruleIDs)
		}
		switch lvl, _ := res["level"].(string); lvl {
		case "error", "warning", "note":
		default:
			t.Errorf("result level = %q, want error|warning|note", lvl)
		}
		if msg, _ := res["message"].(map[string]any)["text"].(string); msg == "" {
			t.Errorf("result %q has empty message.text", id)
		}
		locs, _ := res["locations"].([]any)
		if len(locs) == 0 {
			t.Fatalf("result %q has no locations", id)
		}
		phys, _ := locs[0].(map[string]any)["physicalLocation"].(map[string]any)
		if uri, _ := phys["artifactLocation"].(map[string]any)["uri"].(string); uri != path {
			t.Errorf("artifactLocation.uri = %q, want %q", uri, path)
		}
	}
	if !sawHint {
		t.Errorf("no unconstrained-hint result in SARIF output: %v", ruleIDs)
	}
	// Determinism: a second run renders byte-identical SARIF.
	_, again, _ := runCLI(t, "-lint", "-format", "sarif", path)
	if again != out {
		t.Error("SARIF output not deterministic across runs")
	}
	// -format without -lint is a usage error.
	if code, _, _ := runCLI(t, "-format", "sarif", path); code != 3 {
		t.Errorf("-format without -lint exit = %d, want 3", code)
	}
	// Unknown formats are rejected.
	if code, _, _ := runCLI(t, "-lint", "-format", "yaml", path); code != 3 {
		t.Errorf("unknown format exit = %d, want 3", code)
	}
}
