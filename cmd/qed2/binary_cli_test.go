package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"qed2/internal/bench"
	"qed2/internal/circom"
)

// writeBinaryExport compiles src and writes its binary .r1cs and .sym
// companion next to each other, returning both paths.
func writeBinaryExport(t *testing.T, src string) (r1csPath, symPath string) {
	t.Helper()
	prog, err := circom.Compile(src, &circom.CompileOptions{Library: bench.Library()})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	r1csPath = filepath.Join(dir, "c.r1cs")
	symPath = filepath.Join(dir, "c.sym")
	if err := os.WriteFile(r1csPath, prog.System.MarshalBinary(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(symPath, prog.System.MarshalSym(), 0o644); err != nil {
		t.Fatal(err)
	}
	return r1csPath, symPath
}

// TestCLIBinaryR1CSAutoDetect checks the snarkjs-format ingestion path:
// a binary .r1cs is auto-detected, the sibling .sym restores signal names,
// and the verdict matches the source analysis (unsafe with a named
// counterexample output for the classic IsZero bug).
func TestCLIBinaryR1CSAutoDetect(t *testing.T) {
	binPath, _ := writeBinaryExport(t, buggySrc)
	code, out, errw := runCLI(t, "-seed", "1", binPath)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (unsafe)\n%s%s", code, out, errw)
	}
	if !strings.Contains(out, "unsafe") {
		t.Errorf("verdict missing:\n%s", out)
	}
	// The sibling .sym was picked up by convention: the counterexample
	// names the real output signal, not a synthesized wire name.
	if !strings.Contains(errw, "using signal names from") {
		t.Errorf("sym autodiscovery not reported:\n%s", errw)
	}
	if !strings.Contains(out, "inv") {
		t.Errorf("counterexample lost source names:\n%s", out)
	}
}

// TestCLIBinaryR1CSWithoutSym checks the nameless fallback: analysis still
// works, signals get synthesized w<label> names.
func TestCLIBinaryR1CSWithoutSym(t *testing.T) {
	binPath, symPath := writeBinaryExport(t, buggySrc)
	if err := os.Remove(symPath); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-seed", "1", binPath)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (unsafe)\n%s", code, out)
	}
	if strings.Contains(out, "inv") {
		t.Errorf("expected synthesized wire names, got source names:\n%s", out)
	}
}

// TestCLIBinaryR1CSExplicitSym checks -sym with a non-sibling path, plus
// the -sym-on-text rejection.
func TestCLIBinaryR1CSExplicitSym(t *testing.T) {
	binPath, symPath := writeBinaryExport(t, buggySrc)
	moved := filepath.Join(t.TempDir(), "elsewhere.sym")
	data, err := os.ReadFile(symPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(moved, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(symPath); err != nil {
		t.Fatal(err)
	}
	code, out, _ := runCLI(t, "-seed", "1", "-sym", moved, binPath)
	if code != 1 || !strings.Contains(out, "inv") {
		t.Fatalf("explicit -sym failed (exit %d):\n%s", code, out)
	}

	// -sym is meaningless for the text format, which carries its own names.
	textPath := writeCircuit(t, "mul.circom", safeSrc)
	code, dump, _ := runCLI(t, "-r1cs", textPath)
	if code != 0 {
		t.Fatal("text dump failed")
	}
	textR1CS := filepath.Join(filepath.Dir(textPath), "mul.r1cs")
	if err := os.WriteFile(textR1CS, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errw := runCLI(t, "-sym", moved, textR1CS)
	if code != 3 || !strings.Contains(errw, "-sym") {
		t.Errorf("-sym on text format: exit %d, stderr %q", code, errw)
	}
}
