package main

import (
	"encoding/json"
	"io"
	"strconv"
	"strings"

	"qed2/internal/buildinfo"
	"qed2/internal/sa"
)

// SARIF 2.1.0 rendering of lint findings (`qed2 -lint -format sarif`), the
// static-analysis interchange format GitHub code scanning and most editors
// ingest. Only the schema-required skeleton plus the fields those consumers
// key on is emitted: tool.driver with a rule table, and one result per
// finding with ruleId, level, message, and a physical location pointing at
// the analyzed file (region filled in when the compiler recorded source
// positions, logical location naming the template).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	Version        string      `json:"version,omitempty"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical  `json:"physicalLocation"`
	LogicalLocations []sarifLogical `json:"logicalLocations,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           *sarifRegion  `json:"region,omitempty"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

type sarifLogical struct {
	Name string `json:"name"`
	Kind string `json:"kind,omitempty"`
}

// ruleDescriptions gives each detector its SARIF rule shortDescription.
// Detectors absent from the map still get a rule entry (the id doubles as
// the description) so the rule table always covers every emitted result.
var ruleDescriptions = map[string]string{
	"unreachable-output":          "Output with no constraint path from any input",
	"unconstrained-hint":          "Witness-only (<--) signal mentioned by no constraint",
	"hinted-signal":               "Witness-only (<--) signal: constraints must pin its value",
	"unused-signal":               "Signal that appears in no constraint",
	"dangling-constraint":         "Constraint disconnected from the circuit interface",
	"non-binary-selector":         "Branch selector not constrained to {0,1}",
	"non-binary-in-decomposition": "Decomposition bit not constrained to {0,1}",
	"possibly-zero-divisor":       "Witness hint divides by a possibly-zero expression",
	"nonzero-divisor-proved":      "Divisor proven nonzero by the range analysis",
	"range-violation":             "Constraint unsatisfiable under the derived value ranges",
	"overflow-prone-sum":          "Range-bounded sum can wrap past the field modulus",
}

// sarifLevel maps finding severities onto the SARIF level enum.
func sarifLevel(s sa.Severity) string {
	switch s {
	case sa.SeverityError:
		return "error"
	case sa.SeverityWarning:
		return "warning"
	default:
		return "note"
	}
}

// writeSARIF renders the findings as one SARIF run over the analyzed file.
func writeSARIF(w io.Writer, path string, findings []sa.Finding) error {
	ruleIndex := map[string]int{}
	var rules []sarifRule
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		idx, ok := ruleIndex[f.Detector]
		if !ok {
			idx = len(rules)
			ruleIndex[f.Detector] = idx
			desc := ruleDescriptions[f.Detector]
			if desc == "" {
				desc = f.Detector
			}
			rules = append(rules, sarifRule{ID: f.Detector, ShortDescription: sarifMessage{Text: desc}})
		}
		loc := sarifLocation{PhysicalLocation: sarifPhysical{ArtifactLocation: sarifArtifact{URI: path}}}
		if tmpl, line, col, ok := splitLoc(f.Loc); ok {
			loc.PhysicalLocation.Region = &sarifRegion{StartLine: line, StartColumn: col}
			loc.LogicalLocations = []sarifLogical{{Name: tmpl, Kind: "type"}}
		}
		results = append(results, sarifResult{
			RuleID:    f.Detector,
			RuleIndex: idx,
			Level:     sarifLevel(f.Severity),
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{loc},
		})
	}
	if rules == nil {
		rules = []sarifRule{}
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "qed2", Version: buildinfo.Get().Version, Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

// splitLoc parses a rendered "Template:line:col" finding location.
func splitLoc(loc string) (tmpl string, line, col int, ok bool) {
	i := strings.LastIndexByte(loc, ':')
	if i < 0 {
		return "", 0, 0, false
	}
	j := strings.LastIndexByte(loc[:i], ':')
	if j < 0 {
		return "", 0, 0, false
	}
	line, err1 := strconv.Atoi(loc[j+1 : i])
	col, err2 := strconv.Atoi(loc[i+1:])
	if err1 != nil || err2 != nil || line <= 0 {
		return "", 0, 0, false
	}
	return loc[:j], line, col, true
}
