// Command qed2bench regenerates every table and figure of the evaluation
// (see DESIGN.md §5 for the experiment index) from the 163-instance
// benchmark suite.
//
// Usage:
//
//	qed2bench -all                # everything (default)
//	qed2bench -table 2            # one table (1..4)
//	qed2bench -fig 1              # one figure (1..3)
//	qed2bench -list               # list the suite instances
//	qed2bench -table 2 -json r.json  # also write a machine-readable run record
//	qed2bench -trace run.jsonl    # also write a JSONL trace of the pipeline
//	qed2bench -golden testdata/golden_verdicts.json  # CI verdict-regression gate
//	qed2bench -corpus testdata/corpus/manifest.json -findings-corpus 100 \
//	  -findings-golden testdata/golden_findings.json  # CI lint-findings gate (no SMT, fast)
//	qed2bench -checkpoint ck.jsonl           # persist per-instance results as they complete
//	qed2bench -checkpoint ck.jsonl -resume   # skip instances the checkpoint already decided
//
// Corpus-scale runs (see DESIGN.md §15):
//
//	qed2bench -corpus testdata/corpus/manifest.json -golden testdata/golden_verdicts.json
//	    # golden gate over suite ∪ generated corpus
//	qed2bench -corpus ... -shard 2/4 -golden-out shard_2.json
//	    # one CI leg: analyze every 4th instance, snapshot its verdicts
//	qed2bench -merge shard_1.json,shard_2.json,shard_3.json,shard_4.json -golden testdata/golden_verdicts.json
//	    # recombine the legs (no analysis) and diff the union
//	qed2bench -corpus-gen 500 -gen-seed 20260808 -mismatch-out bad_seeds.json
//	    # nightly: generate+analyze 500 fresh instances, check ground-truth labels
//	qed2bench -corpus-gen 1000 -gen-seed 1 -corpus-out testdata/corpus/manifest.json
//	    # (re)generate the checked-in corpus manifest (no analysis)
//
// A checkpoint's first line stamps the analyzer configuration; -resume
// refuses a checkpoint written under different budgets, seed, or mode
// instead of silently mixing records from incomparable runs.
//
// SIGINT/SIGTERM cancel the run gracefully: in-flight analyses stop at
// their next query boundary, not-yet-started instances are stamped
// "unknown (canceled)", and every requested artifact (tables, -json record,
// -checkpoint lines, trace) is still written from the partial result set.
// A second signal force-kills.
//
// Exit status: 0 on success, 1 when the -golden diff or the -baseline
// regression guard fails (or a run record cannot be written), 130 when the
// run was interrupted.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"qed2/internal/bench"
	"qed2/internal/buildinfo"
	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/gen"
	"qed2/internal/obs"
)

func main() {
	var (
		table          = flag.Int("table", 0, "regenerate one table (1..4)")
		fig            = flag.Int("fig", 0, "regenerate one figure (1..4)")
		all            = flag.Bool("all", false, "regenerate every table and figure")
		list           = flag.Bool("list", false, "list suite instances and exit")
		workers        = flag.Int("workers", 0, "instances analyzed concurrently (0 = GOMAXPROCS)")
		queryWorkers   = flag.Int("query-workers", 1, "parallel slice-query workers within one analysis (0 = GOMAXPROCS); 1 keeps per-instance timings comparable")
		querySteps     = flag.Int64("query-steps", 20_000, "solver step budget per SMT query")
		globalSteps    = flag.Int64("global-steps", 400_000, "total solver step budget per instance")
		timeout        = flag.Duration("timeout", 5*time.Second, "wall-clock budget per instance")
		seed           = flag.Int64("seed", 1, "deterministic solver seed")
		verbose        = flag.Bool("v", false, "print per-instance progress")
		jsonOut        = flag.String("json", "", "write a machine-readable run record (timings, tallies, solver counters) to this file")
		trace          = flag.String("trace", "", "write a JSONL trace of the pipeline (per-instance and per-query spans) to this file")
		printMetrics   = flag.Bool("metrics", false, "print pipeline counters and histograms to stderr after the run")
		pprofAddr      = flag.String("pprof", "", "serve net/http/pprof and a /metrics snapshot on this address (e.g. localhost:6060) for long runs")
		golden         = flag.String("golden", "", "diff the full-run per-instance verdicts against this golden file; exit 1 on any flip")
		goldenOut      = flag.String("golden-out", "", "write the full-run per-instance verdicts to this golden file")
		findingsGolden = flag.String("findings-golden", "", "diff the static-analysis findings of every suite instance against this golden file; exit 1 on any change (solver-free, no full run)")
		findingsOut    = flag.String("findings-out", "", "write the static-analysis findings of every suite instance to this golden file")
		findingsCorpus = flag.Int("findings-corpus", 0, "truncate the -corpus run list to its first N instances (the findings gate pins a fixed corpus slice rather than the whole corpus)")
		baseline       = flag.String("baseline", "", "compare run:full analysis time against this earlier -json run record")
		maxSlowdown    = flag.Float64("max-slowdown", 2.0, "fail when run:full analysis time exceeds the -baseline record by this factor")
		noIncremental  = flag.Bool("no-incremental", false, "disable incremental slice solving (shared base states, learned facts); every query solved from scratch")
		checkpoint     = flag.String("checkpoint", "", "append per-instance results of the full run to this JSONL file as they complete")
		resume         = flag.Bool("resume", false, "skip instances already decided in the -checkpoint file instead of re-analyzing them")
		corpus         = flag.String("corpus", "", "append generated-corpus instances from this manifest to the run list")
		shard          = flag.String("shard", "", "run only the i-th of n interleaved shards of the run list (1-based), e.g. -shard 2/4")
		merge          = flag.String("merge", "", "comma-separated per-shard golden files to recombine (no analysis run); diffed with -golden, written with -golden-out")
		corpusGen      = flag.Int("corpus-gen", 0, "replace the suite with N freshly generated corpus instances and check verdicts against ground-truth labels (exit 1 on soundness violations)")
		genSeed        = flag.Int64("gen-seed", 1, "base seed for -corpus-gen")
		corpusOut      = flag.String("corpus-out", "", "write the -corpus-gen manifest to this file (and skip the analysis run unless a gate flag asks for one)")
		mismatchOut    = flag.String("mismatch-out", "", "write ground-truth mismatches (violations and misses) of a -corpus-gen run to this JSON file")
		version        = flag.Bool("version", false, "print the build version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("qed2bench", buildinfo.Get().String())
		return
	}
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "qed2bench: -resume requires -checkpoint")
		os.Exit(1)
	}
	if _, err := faultinject.EnableFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "qed2bench:", err)
		os.Exit(1)
	}
	// -merge recombines per-shard golden snapshots without any analysis.
	if *merge != "" {
		os.Exit(runMerge(*merge, *golden, *goldenOut))
	}
	gateRun := *golden != "" || *goldenOut != "" || *baseline != "" || *checkpoint != "" || *corpusGen > 0
	// The findings gate is solver-free (compile + static pass only); on its
	// own it never triggers the full analysis run.
	lintRun := *findingsGolden != "" || *findingsOut != ""
	if !*all && *table == 0 && *fig == 0 && !*list && !gateRun && !lintRun {
		*all = true
	}
	insts := bench.Suite()
	if *corpusGen > 0 {
		m, err := gen.BuildManifest(*genSeed, *corpusGen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			os.Exit(1)
		}
		if *corpusOut != "" {
			if err := os.WriteFile(*corpusOut, m.Marshal(), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "qed2bench: writing %s: %v\n", *corpusOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "corpus manifest written to %s (%d instances, base seed %d)\n",
				*corpusOut, len(m.Instances), *genSeed)
			// Manifest generation alone needs no analysis run.
			if *golden == "" && *goldenOut == "" && *mismatchOut == "" && *checkpoint == "" && *baseline == "" {
				return
			}
		}
		// Ground-truth mode replaces the suite: every instance carries a
		// generator label the verdicts are checked against after the run.
		insts = bench.CorpusInstances(m)
	}
	if *findingsCorpus > 0 && *corpus == "" {
		fmt.Fprintln(os.Stderr, "qed2bench: -findings-corpus requires -corpus")
		os.Exit(1)
	}
	if *corpus != "" {
		cinsts, err := bench.LoadCorpus(*corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			os.Exit(1)
		}
		if *findingsCorpus > 0 && len(cinsts) > *findingsCorpus {
			cinsts = cinsts[:*findingsCorpus]
		}
		insts = append(insts, cinsts...)
	}
	if *shard != "" {
		idx, n, err := bench.ParseShard(*shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			os.Exit(1)
		}
		insts = bench.ShardInstances(insts, idx, n)
		fmt.Fprintf(os.Stderr, "shard %s: %d of the run list's instances\n", *shard, len(insts))
	}
	if *list {
		for _, in := range insts {
			fmt.Printf("%-26s %-12s expect=%s vuln=%v\n", in.Name, in.Category, in.Expect, in.Vuln)
		}
		return
	}

	// ctx is canceled by the first SIGINT/SIGTERM; stop() then restores the
	// default handlers so a second signal force-kills a hung shutdown.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()

	reg := obs.NewMetrics()
	var tracer *obs.Tracer
	stopSampler := func() {}
	if *trace != "" {
		var err error
		tracer, err = obs.NewFile(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			os.Exit(1)
		}
		tracer.AttachMetrics(reg)
		bi := buildinfo.Get()
		tracer.Meta("qed2bench",
			obs.Attr{Key: "version", Val: bi.Version},
			obs.Attr{Key: "revision", Val: bi.Revision},
			obs.Attr{Key: "go", Val: bi.GoVersion})
		stopSampler = tracer.StartRuntimeSampler(time.Second)
	}
	if *pprofAddr != "" {
		serveDebug(*pprofAddr, reg)
	}

	baseCfg := core.Config{
		QuerySteps:         *querySteps,
		GlobalSteps:        *globalSteps,
		Timeout:            *timeout,
		Seed:               *seed,
		Workers:            *queryWorkers,
		DisableIncremental: *noIncremental,
	}
	started := time.Now()
	var rec *bench.RunRecord
	if *jsonOut != "" || *baseline != "" {
		iw := *workers
		if iw <= 0 {
			iw = runtime.GOMAXPROCS(0)
		}
		rec = bench.NewRunRecord(len(insts), iw, *queryWorkers, baseCfg)
	}
	// record appends a timed section to the -json run record (no-op without
	// the flag); section wraps a block so runs and renders are both timed.
	record := func(name string, start time.Time, results []bench.Result) {
		if rec != nil {
			rec.AddSection(name, time.Since(start), results)
		}
	}
	opts := func(cfg core.Config) *bench.RunOptions {
		o := &bench.RunOptions{Config: cfg, Workers: *workers, Obs: tracer, Metrics: reg}
		if *verbose {
			o.Progress = func(done, total int, r bench.Result) {
				v := "compile-error"
				if r.Report != nil {
					v = r.Report.Verdict.String()
				}
				fmt.Fprintf(os.Stderr, "[%3d/%3d] %-26s %-8s %s\n",
					done, total, r.Instance.Name, v, r.AnalyzeTime.Round(time.Millisecond))
			}
		}
		return o
	}

	exit := 0
	runFull := func() []bench.Result {
		o := opts(baseCfg)
		if *checkpoint != "" {
			if *resume {
				completed, err := bench.LoadCheckpoint(*checkpoint, baseCfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "qed2bench:", err)
					os.Exit(1)
				}
				if len(completed) > 0 {
					fmt.Fprintf(os.Stderr, "resuming: %d instance(s) already decided in %s\n", len(completed), *checkpoint)
				}
				o.Completed = completed
			} else {
				// A fresh (non-resume) run starts a fresh checkpoint.
				os.Remove(*checkpoint)
			}
			w, err := bench.NewCheckpointWriter(*checkpoint, baseCfg)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qed2bench:", err)
				os.Exit(1)
			}
			o.Checkpoint = w
		}
		fmt.Fprintf(os.Stderr, "running %d instances (qed2 full config)...\n", len(insts))
		t0 := time.Now()
		r := bench.RunContext(ctx, insts, o)
		record("run:full", t0, r)
		if o.Checkpoint != nil {
			if err := o.Checkpoint.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "qed2bench: writing checkpoint %s: %v\n", *checkpoint, err)
				exit = 1
			}
			o.Checkpoint.Close()
		}
		return r
	}
	var full []bench.Result

	need := func(want bool) bool { return *all || want }

	if need(*table >= 1 && *table <= 4) || need(*fig == 1 || *fig == 3) || gateRun {
		full = runFull()
	}
	if *all || *table == 1 {
		t0 := time.Now()
		fmt.Println(bench.Table1(full))
		record("table1", t0, full)
	}
	if *all || *table == 2 {
		t0 := time.Now()
		fmt.Println(bench.Table2(full))
		record("table2", t0, full)
	}
	if *all || *table == 3 || *fig == 1 {
		fmt.Fprintln(os.Stderr, "running baselines (propagation-only, smt-only)...")
		propCfg := baseCfg
		propCfg.Mode = core.ModePropagationOnly
		smtCfg := baseCfg
		smtCfg.Mode = core.ModeSMTOnly
		t0 := time.Now()
		propRes := bench.RunContext(ctx, insts, opts(propCfg))
		record("run:propagation-only", t0, propRes)
		t0 = time.Now()
		smtRes := bench.RunContext(ctx, insts, opts(smtCfg))
		record("run:smt-only", t0, smtRes)
		byMode := map[string][]bench.Result{
			"qed2":             full,
			"propagation-only": propRes,
			"smt-only":         smtRes,
		}
		order := []string{"qed2", "propagation-only", "smt-only"}
		if *all || *table == 3 {
			t0 = time.Now()
			fmt.Println(bench.Table3(byMode, order))
			record("table3", t0, full)
		}
		if *all || *fig == 1 {
			t0 = time.Now()
			fmt.Println(bench.Figure1(byMode, order))
			record("fig1", t0, full)
		}
	}
	if *all || *table == 4 {
		t0 := time.Now()
		fmt.Println(bench.Table4(full))
		record("table4", t0, full)
	}
	if *all || *fig == 2 {
		fmt.Fprintln(os.Stderr, "running slice-radius sweep (k = 1, 2, 3)...")
		byRadius := map[int][]bench.Result{}
		for _, k := range []int{1, 2, 3} {
			cfg := baseCfg
			cfg.SliceRadius = k
			if k == 2 && full != nil {
				byRadius[k] = full
				continue
			}
			t0 := time.Now()
			byRadius[k] = bench.RunContext(ctx, insts, opts(cfg))
			record(fmt.Sprintf("run:radius-k%d", k), t0, byRadius[k])
		}
		t0 := time.Now()
		fmt.Println(bench.Figure2(byRadius))
		record("fig2", t0, byRadius[2])
	}
	if *all || *fig == 3 {
		t0 := time.Now()
		fmt.Println(bench.Figure3(full))
		record("fig3", t0, full)
	}
	if *all || *fig == 4 {
		fmt.Fprintln(os.Stderr, "running rule ablation (full / -bits / -all-rules)...")
		noBits := baseCfg
		noBits.DisableBitsRule = true
		noRules := baseCfg
		noRules.DisableBitsRule = true
		noRules.DisableSolveRule = true
		t0 := time.Now()
		noBitsRes := bench.RunContext(ctx, insts, opts(noBits))
		record("run:no-bits", t0, noBitsRes)
		t0 = time.Now()
		noRulesRes := bench.RunContext(ctx, insts, opts(noRules))
		record("run:no-rules", t0, noRulesRes)
		byConfig := map[string][]bench.Result{
			"full rule set":  full,
			"without R-Bits": noBitsRes,
			"no rules (SMT)": noRulesRes,
		}
		t0 = time.Now()
		fmt.Println(bench.Figure4(byConfig, []string{"full rule set", "without R-Bits", "no rules (SMT)"}))
		record("fig4", t0, full)
	}
	if lintRun {
		fresh, err := bench.CollectFindings(insts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			os.Exit(1)
		}
		if *findingsOut != "" {
			b, err := fresh.Marshal()
			if err == nil {
				err = os.WriteFile(*findingsOut, b, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "qed2bench: writing %s: %v\n", *findingsOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "golden findings written to %s (%d instances)\n", *findingsOut, len(fresh.Instances))
		}
		if *findingsGolden != "" {
			gold, err := bench.LoadFindings(*findingsGolden)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qed2bench:", err)
				os.Exit(1)
			}
			if diffs := bench.DiffFindings(gold, fresh); len(diffs) > 0 {
				fmt.Fprintf(os.Stderr, "qed2bench: %d golden-finding regression(s) against %s:\n", len(diffs), *findingsGolden)
				for _, d := range diffs {
					fmt.Fprintln(os.Stderr, "  "+d)
				}
				exit = 1
			} else {
				fmt.Fprintf(os.Stderr, "golden findings: %d instances match %s\n", len(fresh.Instances), *findingsGolden)
			}
		}
	}
	if *corpusGen > 0 && full != nil {
		gt := bench.CheckGroundTruth(full)
		fmt.Fprintf(os.Stderr, "ground truth: %d instances checked, %d violation(s), %d miss(es)\n",
			gt.Checked, len(gt.Violations), len(gt.Misses))
		for _, v := range gt.Violations {
			fmt.Fprintln(os.Stderr, "  VIOLATION: "+v)
		}
		for _, m := range gt.Misses {
			fmt.Fprintln(os.Stderr, "  miss: "+m)
		}
		if *mismatchOut != "" {
			b, err := json.MarshalIndent(gt, "", "  ")
			if err == nil {
				err = os.WriteFile(*mismatchOut, append(b, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "qed2bench: writing %s: %v\n", *mismatchOut, err)
				os.Exit(1)
			}
		}
		// Violations are unsound verdicts — always fatal. Misses are
		// completeness regressions, reported but non-failing.
		if len(gt.Violations) > 0 {
			exit = 1
		}
	}
	if *goldenOut != "" {
		g := bench.GoldenFromResults(baseCfg, full)
		b, err := g.Marshal()
		if err == nil {
			err = os.WriteFile(*goldenOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qed2bench: writing %s: %v\n", *goldenOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "golden verdicts written to %s (%d instances)\n", *goldenOut, len(g.Verdicts))
	}
	if *golden != "" {
		gold, err := bench.LoadGolden(*golden)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			os.Exit(1)
		}
		if *shard != "" {
			// A shard leg runs a subset of the golden population; restrict
			// the golden file so the missing-instance check applies to the
			// instances this leg actually ran.
			gold = gold.Restrict(bench.InstanceNames(insts))
		}
		diffs, degraded := bench.DiffGolden(gold, bench.GoldenFromResults(baseCfg, full))
		if len(degraded) > 0 {
			// Degraded verdicts (unknown: canceled / internal error) mean the
			// run was interrupted or fault-injected — informational, not a
			// regression.
			fmt.Fprintf(os.Stderr, "qed2bench: %d degraded verdict(s) against %s (non-failing):\n", len(degraded), *golden)
			for _, d := range degraded {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
		}
		if len(diffs) > 0 {
			fmt.Fprintf(os.Stderr, "qed2bench: %d golden-verdict regression(s) against %s:\n", len(diffs), *golden)
			for _, d := range diffs {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
			exit = 1
		} else {
			fmt.Fprintf(os.Stderr, "golden verdicts: %d instances match %s (%d degraded)\n", len(gold.Verdicts)-len(degraded), *golden, len(degraded))
		}
	}
	if *baseline != "" {
		base, err := bench.LoadRunRecord(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			os.Exit(1)
		}
		if err := bench.CompareBaseline(base, rec, *maxSlowdown); err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			exit = 1
		} else {
			cur, prev := rec.Section("run:full"), base.Section("run:full")
			fmt.Fprintf(os.Stderr, "bench guard: analysis time %.0f ms vs baseline %.0f ms (<= %.1fx)\n",
				cur.AnalyzeMS, prev.AnalyzeMS, *maxSlowdown)
		}
	}
	if rec != nil {
		rec.Counters = reg.Counters()
		if *jsonOut != "" {
			b, err := rec.Finish(time.Since(started))
			if err == nil {
				err = os.WriteFile(*jsonOut, b, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "qed2bench: writing %s: %v\n", *jsonOut, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "run record written to %s\n", *jsonOut)
		}
	}
	stopSampler()
	if err := tracer.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "qed2bench: writing trace:", err)
		os.Exit(1)
	}
	if *printMetrics {
		reg.Render(os.Stderr)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "qed2bench: interrupted — results above are partial; rerun with -checkpoint/-resume to continue")
		if exit == 0 {
			exit = 130
		}
	}
	os.Exit(exit)
}

// runMerge recombines per-shard golden snapshots (comma-separated paths):
// with -golden-out the merged snapshot is written, with -golden it is
// diffed against the checked-in file. Returns the process exit code.
func runMerge(parts, goldenPath, goldenOutPath string) int {
	var files []*bench.GoldenFile
	for _, p := range strings.Split(parts, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		g, err := bench.LoadGolden(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			return 1
		}
		files = append(files, g)
	}
	merged, err := bench.MergeGolden(files)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qed2bench:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "merged %d shard file(s): %d instances\n", len(files), len(merged.Verdicts))
	if goldenOutPath != "" {
		b, err := merged.Marshal()
		if err == nil {
			err = os.WriteFile(goldenOutPath, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qed2bench: writing %s: %v\n", goldenOutPath, err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "merged golden verdicts written to %s\n", goldenOutPath)
	}
	if goldenPath != "" {
		gold, err := bench.LoadGolden(goldenPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "qed2bench:", err)
			return 1
		}
		diffs, degraded := bench.DiffGolden(gold, merged)
		if len(degraded) > 0 {
			fmt.Fprintf(os.Stderr, "qed2bench: %d degraded verdict(s) against %s (non-failing):\n", len(degraded), goldenPath)
			for _, d := range degraded {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
		}
		if len(diffs) > 0 {
			fmt.Fprintf(os.Stderr, "qed2bench: %d golden-verdict regression(s) against %s:\n", len(diffs), goldenPath)
			for _, d := range diffs {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
			return 1
		}
		fmt.Fprintf(os.Stderr, "golden verdicts: %d instances match %s (%d degraded)\n",
			len(gold.Verdicts)-len(degraded), goldenPath, len(degraded))
	}
	return 0
}

// serveDebug exposes net/http/pprof (registered on the default mux by the
// blank import) plus a JSON snapshot of the pipeline counters and runtime
// memory statistics under /metrics. Best effort: a busy port is reported,
// not fatal.
func serveDebug(addr string, reg *obs.Metrics) {
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"goroutines": runtime.NumGoroutine(),
			"heap_alloc": ms.HeapAlloc,
			"num_gc":     ms.NumGC,
			"counters":   reg.Counters(),
			"histograms": reg.Histograms(),
		})
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "qed2bench: pprof server on %s: %v\n", addr, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "pprof + /metrics serving on http://%s/debug/pprof/\n", addr)
}
