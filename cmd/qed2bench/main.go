// Command qed2bench regenerates every table and figure of the evaluation
// (see DESIGN.md §5 for the experiment index) from the 163-instance
// benchmark suite.
//
// Usage:
//
//	qed2bench -all                # everything (default)
//	qed2bench -table 2            # one table (1..4)
//	qed2bench -fig 1              # one figure (1..3)
//	qed2bench -list               # list the suite instances
//	qed2bench -table 2 -json r.json  # also write a machine-readable run record
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"qed2/internal/bench"
	"qed2/internal/core"
)

func main() {
	var (
		table        = flag.Int("table", 0, "regenerate one table (1..4)")
		fig          = flag.Int("fig", 0, "regenerate one figure (1..4)")
		all          = flag.Bool("all", false, "regenerate every table and figure")
		list         = flag.Bool("list", false, "list suite instances and exit")
		workers      = flag.Int("workers", 0, "instances analyzed concurrently (0 = GOMAXPROCS)")
		queryWorkers = flag.Int("query-workers", 1, "parallel slice-query workers within one analysis (0 = GOMAXPROCS); 1 keeps per-instance timings comparable")
		querySteps   = flag.Int64("query-steps", 20_000, "solver step budget per SMT query")
		globalSteps  = flag.Int64("global-steps", 400_000, "total solver step budget per instance")
		timeout      = flag.Duration("timeout", 5*time.Second, "wall-clock budget per instance")
		seed         = flag.Int64("seed", 1, "deterministic solver seed")
		verbose      = flag.Bool("v", false, "print per-instance progress")
		jsonOut      = flag.String("json", "", "write a machine-readable run record (timings, tallies, solver counters) to this file")
	)
	flag.Parse()
	if !*all && *table == 0 && *fig == 0 && !*list {
		*all = true
	}
	insts := bench.Suite()
	if *list {
		for _, in := range insts {
			fmt.Printf("%-26s %-12s expect=%s vuln=%v\n", in.Name, in.Category, in.Expect, in.Vuln)
		}
		return
	}

	baseCfg := core.Config{
		QuerySteps:  *querySteps,
		GlobalSteps: *globalSteps,
		Timeout:     *timeout,
		Seed:        *seed,
		Workers:     *queryWorkers,
	}
	started := time.Now()
	var rec *bench.RunRecord
	if *jsonOut != "" {
		iw := *workers
		if iw <= 0 {
			iw = runtime.GOMAXPROCS(0)
		}
		rec = bench.NewRunRecord(len(insts), iw, *queryWorkers, baseCfg)
	}
	// record appends a timed section to the -json run record (no-op without
	// the flag); section wraps a block so runs and renders are both timed.
	record := func(name string, start time.Time, results []bench.Result) {
		if rec != nil {
			rec.AddSection(name, time.Since(start), results)
		}
	}
	opts := func(cfg core.Config) *bench.RunOptions {
		o := &bench.RunOptions{Config: cfg, Workers: *workers}
		if *verbose {
			o.Progress = func(done, total int, r bench.Result) {
				v := "compile-error"
				if r.Report != nil {
					v = r.Report.Verdict.String()
				}
				fmt.Fprintf(os.Stderr, "[%3d/%3d] %-26s %-8s %s\n",
					done, total, r.Instance.Name, v, r.AnalyzeTime.Round(time.Millisecond))
			}
		}
		return o
	}

	runFull := func() []bench.Result {
		fmt.Fprintf(os.Stderr, "running %d instances (qed2 full config)...\n", len(insts))
		t0 := time.Now()
		r := bench.Run(insts, opts(baseCfg))
		record("run:full", t0, r)
		return r
	}
	var full []bench.Result

	need := func(want bool) bool { return *all || want }

	if need(*table >= 1 && *table <= 4) || need(*fig == 1 || *fig == 3) {
		full = runFull()
	}
	if *all || *table == 1 {
		t0 := time.Now()
		fmt.Println(bench.Table1(full))
		record("table1", t0, full)
	}
	if *all || *table == 2 {
		t0 := time.Now()
		fmt.Println(bench.Table2(full))
		record("table2", t0, full)
	}
	if *all || *table == 3 || *fig == 1 {
		fmt.Fprintln(os.Stderr, "running baselines (propagation-only, smt-only)...")
		propCfg := baseCfg
		propCfg.Mode = core.ModePropagationOnly
		smtCfg := baseCfg
		smtCfg.Mode = core.ModeSMTOnly
		t0 := time.Now()
		propRes := bench.Run(insts, opts(propCfg))
		record("run:propagation-only", t0, propRes)
		t0 = time.Now()
		smtRes := bench.Run(insts, opts(smtCfg))
		record("run:smt-only", t0, smtRes)
		byMode := map[string][]bench.Result{
			"qed2":             full,
			"propagation-only": propRes,
			"smt-only":         smtRes,
		}
		order := []string{"qed2", "propagation-only", "smt-only"}
		if *all || *table == 3 {
			t0 = time.Now()
			fmt.Println(bench.Table3(byMode, order))
			record("table3", t0, full)
		}
		if *all || *fig == 1 {
			t0 = time.Now()
			fmt.Println(bench.Figure1(byMode, order))
			record("fig1", t0, full)
		}
	}
	if *all || *table == 4 {
		t0 := time.Now()
		fmt.Println(bench.Table4(full))
		record("table4", t0, full)
	}
	if *all || *fig == 2 {
		fmt.Fprintln(os.Stderr, "running slice-radius sweep (k = 1, 2, 3)...")
		byRadius := map[int][]bench.Result{}
		for _, k := range []int{1, 2, 3} {
			cfg := baseCfg
			cfg.SliceRadius = k
			if k == 2 && full != nil {
				byRadius[k] = full
				continue
			}
			t0 := time.Now()
			byRadius[k] = bench.Run(insts, opts(cfg))
			record(fmt.Sprintf("run:radius-k%d", k), t0, byRadius[k])
		}
		t0 := time.Now()
		fmt.Println(bench.Figure2(byRadius))
		record("fig2", t0, byRadius[2])
	}
	if *all || *fig == 3 {
		t0 := time.Now()
		fmt.Println(bench.Figure3(full))
		record("fig3", t0, full)
	}
	if *all || *fig == 4 {
		fmt.Fprintln(os.Stderr, "running rule ablation (full / -bits / -all-rules)...")
		noBits := baseCfg
		noBits.DisableBitsRule = true
		noRules := baseCfg
		noRules.DisableBitsRule = true
		noRules.DisableSolveRule = true
		t0 := time.Now()
		noBitsRes := bench.Run(insts, opts(noBits))
		record("run:no-bits", t0, noBitsRes)
		t0 = time.Now()
		noRulesRes := bench.Run(insts, opts(noRules))
		record("run:no-rules", t0, noRulesRes)
		byConfig := map[string][]bench.Result{
			"full rule set":  full,
			"without R-Bits": noBitsRes,
			"no rules (SMT)": noRulesRes,
		}
		t0 = time.Now()
		fmt.Println(bench.Figure4(byConfig, []string{"full rule set", "without R-Bits", "no rules (SMT)"}))
		record("fig4", t0, full)
	}
	if rec != nil {
		b, err := rec.Finish(time.Since(started))
		if err == nil {
			err = os.WriteFile(*jsonOut, b, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "qed2bench: writing %s: %v\n", *jsonOut, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "run record written to %s\n", *jsonOut)
	}
}
