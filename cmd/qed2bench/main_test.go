package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"qed2/internal/bench"
	"qed2/internal/core"
)

// buildBench compiles the qed2bench binary once per test binary.
func buildBench(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qed2bench")
	out, err := exec.Command("go", "build", "-o", bin, "qed2/cmd/qed2bench").CombinedOutput()
	if err != nil {
		t.Fatalf("building qed2bench: %v\n%s", err, out)
	}
	return bin
}

// benchArgs is the budget configuration shared by every e2e run: workers=1
// for a deterministic instance order, step budgets small enough to finish in
// seconds but with a wall-clock timeout loose enough that steps (not time)
// decide every verdict — the precondition for run-to-run determinism.
func benchArgs(extra ...string) []string {
	args := []string{
		"-workers", "1", "-query-workers", "1",
		"-query-steps", "500", "-global-steps", "10000",
		"-timeout", "30s", "-seed", "1",
	}
	return append(args, extra...)
}

// countLines returns the number of complete (newline-terminated) lines.
func countLines(path string) int {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0
	}
	return strings.Count(string(b), "\n")
}

// TestSIGINTYieldsPartialCheckpointAndResumeConverges drives the full
// fault-tolerance contract of qed2bench end to end: SIGINT mid-suite must
// exit 130 leaving a parseable partial checkpoint and a parseable partial
// -json record, and -resume from that checkpoint must converge to exactly
// the verdict set of an uninterrupted run.
func TestSIGINTYieldsPartialCheckpointAndResumeConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e suite runs take ~20s")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.jsonl")
	partialJSON := filepath.Join(dir, "partial.json")

	// Phase 1: start a checkpointed run, interrupt it once a few instances
	// have been persisted.
	cmd := exec.Command(bin, benchArgs("-checkpoint", ck, "-json", partialJSON)...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	deadline := time.After(60 * time.Second)
	for countLines(ck) < 3 {
		select {
		case err := <-exited:
			t.Fatalf("qed2bench exited before it could be interrupted: %v", err)
		case <-deadline:
			t.Fatalf("no checkpoint progress after 60s (have %d lines)", countLines(ck))
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case <-exited:
	case <-deadline:
		t.Fatal("qed2bench did not exit within 60s of SIGINT")
	}
	if code := cmd.ProcessState.ExitCode(); code != 130 {
		t.Fatalf("interrupted qed2bench exit = %d, want 130", code)
	}

	// The partial checkpoint must parse (against the matching config stamp)
	// and be genuinely partial.
	completed, err := bench.LoadCheckpoint(ck, core.Config{QuerySteps: 500, GlobalSteps: 10_000, Seed: 1})
	if err != nil {
		t.Fatalf("partial checkpoint unparseable: %v", err)
	}
	suiteSize := len(bench.Suite())
	if len(completed) < 3 || len(completed) >= suiteSize {
		t.Fatalf("checkpoint has %d records, want a partial set in [3, %d)", len(completed), suiteSize)
	}
	for name, rec := range completed {
		if rec.Degraded == string(core.DegradedCanceled) {
			t.Fatalf("checkpoint persisted a cancellation-degraded verdict for %s (reason %q)", name, rec.Reason)
		}
	}
	// The partial -json run record must parse too.
	rec, err := bench.LoadRunRecord(partialJSON)
	if err != nil {
		t.Fatalf("partial -json record unparseable: %v", err)
	}
	if s := rec.Section("run:full"); s == nil || s.Instances != suiteSize {
		t.Fatalf("partial record run:full section = %+v", s)
	}

	// Phase 2: resume the interrupted run to completion.
	g1 := filepath.Join(dir, "resumed.json")
	out, err := exec.Command(bin, benchArgs("-checkpoint", ck, "-resume", "-golden-out", g1)...).CombinedOutput()
	if err != nil {
		t.Fatalf("resume run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "resuming:") {
		t.Fatalf("resume run did not report skipped instances:\n%s", out)
	}

	// Phase 3: an uninterrupted run must produce the identical verdict set.
	g2 := filepath.Join(dir, "fresh.json")
	out, err = exec.Command(bin, benchArgs("-golden-out", g2)...).CombinedOutput()
	if err != nil {
		t.Fatalf("fresh run failed: %v\n%s", err, out)
	}
	resumed, err := bench.LoadGolden(g1)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := bench.LoadGolden(g2)
	if err != nil {
		t.Fatal(err)
	}
	diffs, degraded := bench.DiffGolden(fresh, resumed)
	if len(diffs) != 0 || len(degraded) != 0 {
		t.Fatalf("resumed run diverged from uninterrupted run:\ndiffs: %v\ndegraded: %v", diffs, degraded)
	}
}

func TestResumeRequiresCheckpoint(t *testing.T) {
	bin := buildBench(t)
	out, err := exec.Command(bin, "-resume").CombinedOutput()
	if err == nil {
		t.Fatal("-resume without -checkpoint accepted")
	}
	if !strings.Contains(string(out), "-resume requires -checkpoint") {
		t.Fatalf("unhelpful error: %s", out)
	}
}
