package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardMergeRecombinesExactly drives the sharded golden gate end to
// end: an unsharded corpus run's golden snapshot must be byte-identical to
// the merge of the per-shard snapshots, the merge must diff clean against
// the unsharded file, and a single shard leg must diff clean against the
// full golden file (via the shard-restricted comparison).
func TestShardMergeRecombinesExactly(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e corpus runs skipped with -short")
	}
	bin := buildBench(t)
	dir := t.TempDir()
	// Seeds 30..35 derive 3 safe + 3 unsafe profiles — no unknown-profile
	// instances, which would burn the whole query budget by design.
	gen := []string{"-corpus-gen", "6", "-gen-seed", "30"}

	run := func(wantExit int, extra ...string) string {
		t.Helper()
		cmd := exec.Command(bin, append(benchArgs(gen...), extra...)...)
		out, err := cmd.CombinedOutput()
		if cmd.ProcessState.ExitCode() != wantExit {
			t.Fatalf("qed2bench %v: exit %d (want %d), err %v\n%s",
				extra, cmd.ProcessState.ExitCode(), wantExit, err, out)
		}
		return string(out)
	}

	whole := filepath.Join(dir, "whole.json")
	run(0, "-golden-out", whole)

	var shardFiles []string
	for i := 1; i <= 3; i++ {
		sf := filepath.Join(dir, "shard_"+string(rune('0'+i))+".json")
		shardFiles = append(shardFiles, sf)
		run(0, "-shard", string(rune('0'+i))+"/3", "-golden-out", sf)
	}

	// A single leg diffs clean against the full golden file.
	out := run(0, "-shard", "2/3", "-golden", whole)
	if !strings.Contains(out, "match") {
		t.Errorf("shard leg diff output missing match line:\n%s", out)
	}

	// Merge (no analysis) reproduces the unsharded snapshot byte for byte
	// and diffs clean.
	merged := filepath.Join(dir, "merged.json")
	cmd := exec.Command(bin, "-merge", strings.Join(shardFiles, ","), "-golden", whole, "-golden-out", merged)
	mout, err := cmd.CombinedOutput()
	if cmd.ProcessState.ExitCode() != 0 {
		t.Fatalf("merge: exit %d, err %v\n%s", cmd.ProcessState.ExitCode(), err, mout)
	}
	wantB, err := os.ReadFile(whole)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := os.ReadFile(merged)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantB, gotB) {
		t.Fatalf("merged snapshot is not byte-identical to the unsharded one:\n%s\nvs\n%s", gotB, wantB)
	}

	// Overlapping shards must be rejected.
	cmd = exec.Command(bin, "-merge", shardFiles[0]+","+shardFiles[0])
	mout, _ = cmd.CombinedOutput()
	if cmd.ProcessState.ExitCode() == 0 {
		t.Fatalf("overlapping shard merge accepted:\n%s", mout)
	}
}

// TestCorpusFlagExtendsRunList checks -corpus assembly without paying for
// an analysis run, via -list.
func TestCorpusFlagExtendsRunList(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e binary build skipped with -short")
	}
	bin := buildBench(t)
	manifest := filepath.Join(t.TempDir(), "m.json")
	if out, err := exec.Command(bin, "-corpus-gen", "4", "-gen-seed", "100", "-corpus-out", manifest).CombinedOutput(); err != nil {
		t.Fatalf("manifest generation: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-corpus", manifest, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-corpus -list: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"Num2Bits(1)", "gen/safe-100", "Corpus/"} {
		if !strings.Contains(s, want) {
			t.Errorf("listing missing %q:\n%s", want, s)
		}
	}
	// A truncated manifest must be rejected, not silently shrunk.
	if err := os.WriteFile(manifest, []byte(`{"generator_version": 999, "instances": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, "-corpus", manifest, "-list")
	out, _ = cmd.CombinedOutput()
	if cmd.ProcessState.ExitCode() == 0 {
		t.Fatalf("version-mismatched manifest accepted:\n%s", out)
	}
}
