package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"qed2/internal/bench"
	"qed2/internal/core"
)

// End-to-end coverage of the hard-fault isolation layer: a sandbox worker
// dying — by external SIGKILL here, exactly what the kernel OOM killer
// delivers — must cost its one job a hard-fault degradation and nothing
// else; the daemon keeps serving, and /readyz tracks the queue and drain
// states that should steer a load balancer away without killing the
// process.

// workerPIDs lists live direct children of the daemon process (procfs, so
// linux-only; callers skip elsewhere).
func workerPIDs(parent int) []int {
	entries, err := os.ReadDir("/proc")
	if err != nil {
		return nil
	}
	var out []int
	for _, ent := range entries {
		pid, err := strconv.Atoi(ent.Name())
		if err != nil {
			continue
		}
		b, err := os.ReadFile("/proc/" + ent.Name() + "/stat")
		if err != nil {
			continue
		}
		// /proc/<pid>/stat: "pid (comm) state ppid ..."; comm may contain
		// spaces, so parse after the last ')'.
		s := string(b)
		i := strings.LastIndexByte(s, ')')
		if i < 0 {
			continue
		}
		fields := strings.Fields(s[i+1:])
		if len(fields) < 2 {
			continue
		}
		if ppid, err := strconv.Atoi(fields[1]); err == nil && ppid == parent {
			out = append(out, pid)
		}
	}
	return out
}

// getStatus fetches a URL and returns just the status code (for endpoints
// whose non-200 answers are part of the contract).
func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestSandboxWorkerSIGKILLSurvival wedges the second sandbox worker with an
// injected hang, verifies /readyz flips to 503 while the one-slot queue is
// saturated behind it, SIGKILLs the worker from outside the process tree,
// and checks that only that job hard-faults: the queued job completes, the
// daemon never restarts, and readiness recovers.
func TestSandboxWorkerSIGKILLSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon subprocess")
	}
	if runtime.GOOS != "linux" {
		t.Skip("worker discovery reads procfs")
	}
	bin := buildDaemon(t)
	d := startDaemonEnv(t, bin, freePort(t),
		[]string{"QED2_FAULTS=error@worker.hang:every=2"},
		"-sandbox", "-job-wall", "120s", "-workers", "1", "-queue-depth", "1",
		"-query-steps", "5000", "-global-steps", "100000", "-seed", "1", "-no-store")
	defer d.terminate(t)
	base := d.base

	if code := getStatus(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("initial /readyz = %d, want 200", code)
	}

	// Job 1: first spawn, no fault — proves the sandbox path itself works.
	j1, code := submit(t, base, "alice", e2eCircuit)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("first submit = %d: %v", code, j1)
	}
	v1 := pollDone(t, base, j1["id"].(string))
	if v1["status"] != "done" || v1["report"].(map[string]any)["verdict"] != "safe" {
		t.Fatalf("sandboxed job 1 = %v", v1)
	}

	// Job 2: second spawn hangs mid-analysis. Wait until its worker child
	// exists, then saturate the queue behind it with job 3.
	mul := `
template Mul() {
    signal input a;
    signal input b;
    signal output out;
    out <== a * b;
}
component main = Mul();
`
	j2, code := submit(t, base, "alice", mul)
	if code != http.StatusAccepted {
		t.Fatalf("second submit = %d: %v", code, j2)
	}
	daemonPID := d.cmd.Process.Pid
	var victim int
	deadline := time.Now().Add(30 * time.Second)
	for victim == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hung worker child never appeared under the daemon")
		}
		if pids := workerPIDs(daemonPID); len(pids) > 0 {
			victim = pids[0]
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	bits := `
template Bit() {
    signal input in;
    signal output out;
    out <== in * in;
    in * (in - 1) === 0;
}
component main = Bit();
`
	j3, code := submit(t, base, "alice", bits)
	if code != http.StatusAccepted {
		t.Fatalf("third submit = %d: %v", code, j3)
	}
	if code := getStatus(t, base+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with saturated queue = %d, want 503", code)
	}
	if code := getStatus(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz while degraded = %d, want 200 (liveness is not readiness)", code)
	}

	// The kernel's move: kill the worker, not the daemon.
	if err := syscall.Kill(victim, syscall.SIGKILL); err != nil {
		t.Fatalf("killing worker %d: %v", victim, err)
	}

	// Job 2 hard-faults; job 3 runs unaffected on the freed slot.
	v2 := pollDone(t, base, j2["id"].(string))
	if v2["status"] != "failed" {
		t.Fatalf("killed worker's job = %v", v2)
	}
	if rep := v2["report"].(map[string]any); rep["degraded"] != "hard-fault" {
		t.Fatalf("killed worker's report = %v, want hard-fault degradation", rep)
	}
	if v2["retriable"] != true {
		t.Fatalf("hard-fault job not retriable: %v", v2)
	}
	v3 := pollDone(t, base, j3["id"].(string))
	if v3["status"] != "done" || v3["report"].(map[string]any)["verdict"] != "safe" {
		t.Fatalf("queued job after worker death = %v", v3)
	}
	if code := getStatus(t, base+"/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz after recovery = %d, want 200", code)
	}

	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	getJSON(t, base+"/metrics", &m)
	if m.Counters["service.jobs.hard_faults"] != 1 {
		t.Fatalf("service.jobs.hard_faults = %d, want 1", m.Counters["service.jobs.hard_faults"])
	}
	if m.Counters["service.sandbox.spawns"] != 3 {
		t.Fatalf("service.sandbox.spawns = %d, want 3", m.Counters["service.sandbox.spawns"])
	}
	// deferred terminate asserts exit 0: the daemon process itself was
	// never restarted or killed.
}

// TestSandboxGoldenReplay is the acceptance run: the full suite replayed
// over HTTP against a -sandbox daemon whose workers are SIGKILLed on ~10%
// of jobs, converging byte-identical to the golden verdicts purely through
// client retries and quarantine cooldowns — the daemon starts once and is
// never restarted. Heavy: enabled via QED2D_SANDBOX_GOLDEN=1 (the chaos CI
// job sets it).
func TestSandboxGoldenReplay(t *testing.T) {
	if os.Getenv("QED2D_SANDBOX_GOLDEN") == "" {
		t.Skip("set QED2D_SANDBOX_GOLDEN=1 to run the sandbox golden replay")
	}
	bin := buildDaemon(t)
	addr := freePort(t)
	d := startDaemonEnv(t, bin, addr,
		[]string{"QED2_FAULTS=error@worker.kill:rate=0.1", "QED2_FAULTS_SEED=9"},
		"-sandbox", "-job-wall", "120s", "-workers", "4",
		"-quarantine-faults", "3", "-quarantine-cooldown", "2s",
		"-query-steps", "20000", "-global-steps", "400000", "-seed", "1",
		"-timeout", "120s", "-query-workers", "1", "-queue-depth", "200")
	defer d.terminate(t)
	base := "http://" + addr
	insts := bench.Suite()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	var done atomic.Int64
	results, err := bench.ReplayHTTP(ctx, insts, bench.ReplayOptions{
		BaseURL:        base,
		Inflight:       8,
		PollInterval:   20 * time.Millisecond,
		FailureRetries: 8,
		Progress: func(n, total int, _ bench.Result) {
			if n%20 == 0 {
				fmt.Printf("sandbox replay %d/%d\n", n, total)
			}
			done.Add(1)
		},
	})
	if err != nil {
		t.Fatalf("replay failed: %v", err)
	}

	goldenCfg := core.Config{QuerySteps: 20_000, GlobalSteps: 400_000, Seed: 1}
	golden, err := bench.LoadGolden(filepath.Join("..", "..", "testdata", "golden_verdicts.json"))
	if err != nil {
		t.Fatal(err)
	}
	golden = golden.Restrict(bench.InstanceNames(insts))
	fresh := bench.GoldenFromResults(goldenCfg, results)
	diffs, degraded := bench.DiffGolden(golden, fresh)
	if len(diffs) != 0 {
		t.Fatalf("sandbox replay diverged from golden verdicts:\n%s", strings.Join(diffs, "\n"))
	}
	if len(degraded) != 0 {
		t.Fatalf("sandbox replay left degraded verdicts:\n%s", strings.Join(degraded, "\n"))
	}

	// The chaos schedule must actually have killed workers: hard faults are
	// the whole point of the run.
	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	getJSON(t, base+"/metrics", &m)
	if m.Counters["service.jobs.hard_faults"] == 0 {
		t.Fatal("worker.kill faults never fired — the replay proved nothing")
	}
	t.Logf("converged through %d hard faults, %d quarantine rejections, %d spawns",
		m.Counters["service.jobs.hard_faults"],
		m.Counters["service.jobs.quarantined"],
		m.Counters["service.sandbox.spawns"])
}
