package main

import (
	"net/http"
	"testing"

	"qed2/internal/circom"
	"qed2/internal/r1cs"
)

// TestBinaryR1CSSubmission posts a binary snarkjs .r1cs body to
// POST /v1/analyze and checks it is auto-detected, analyzed, and that the
// verdict matches the source-form submission of the same circuit. It also
// checks that a truncated binary body is a 400, not a crash or a circom
// parse error.
func TestBinaryR1CSSubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon subprocess")
	}
	prog, err := circom.Compile(e2eCircuit, nil)
	if err != nil {
		t.Fatal(err)
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, freePort(t), "-query-steps", "5000", "-global-steps", "100000", "-seed", "1")
	defer d.terminate(t)
	base := d.base

	body := prog.System.MarshalBinary()
	if !r1cs.IsBinaryR1CS(body) {
		t.Fatal("MarshalBinary output not self-identifying")
	}
	j, code := submit(t, base, "alice", string(body))
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("binary submit = %d: %v", code, j)
	}
	v := pollDone(t, base, j["id"].(string))
	if v["status"] != "done" {
		t.Fatalf("binary job = %v", v)
	}
	binVerdict := v["report"].(map[string]any)["verdict"]

	js, code := submit(t, base, "alice", e2eCircuit)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("source submit = %d: %v", code, js)
	}
	vs := pollDone(t, base, js["id"].(string))
	srcVerdict := vs["report"].(map[string]any)["verdict"]
	if binVerdict != srcVerdict {
		t.Fatalf("binary verdict %v != source verdict %v", binVerdict, srcVerdict)
	}

	// Truncated binary: detected as binary, rejected as malformed.
	bad, code := submit(t, base, "alice", string(body[:20]))
	if code != http.StatusBadRequest {
		t.Fatalf("truncated binary submit = %d: %v", code, bad)
	}
}
