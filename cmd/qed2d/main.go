// Command qed2d is the QED² analysis daemon: a long-running HTTP/JSON
// service that accepts circuit submissions from multiple tenants, analyzes
// them on a bounded worker pool, caches reports in a content-addressed
// store, and streams per-job progress events.
//
// API:
//
//	POST /v1/analyze            submit a circuit (circom source, an r1cs
//	                            dump as produced by qed2 -r1cs, or a binary
//	                            snarkjs .r1cs file — auto-detected);
//	                            tenant via X-QED2-Tenant. 200/202 with the
//	                            job JSON, 400 on compile errors, 429 on
//	                            admission rejection, 503 while draining.
//	GET  /v1/jobs               list jobs (submission order)
//	GET  /v1/jobs/{id}          poll one job
//	GET  /v1/jobs/{id}/events   stream the job's progress feed as NDJSON
//	GET  /healthz               liveness + build/version + queue snapshot
//	GET  /readyz                readiness: 503 while draining, with the
//	                            queue saturated, or after a failed store
//	                            scrub — load balancers stop routing without
//	                            killing the process
//	GET  /metrics               pipeline and service counters as JSON
//
// With -sandbox each analysis runs in a re-exec'd `qed2d worker` child
// process (memory ceiling via -job-mem-mb, wall-clock watchdog via
// -job-wall); a child that crashes or is killed costs one job a hard-fault
// degradation, never the daemon. Digests that hard-fault repeatedly are
// quarantined (422 + Retry-After) until a cooldown probe clears them.
//
// SIGINT/SIGTERM drain gracefully: queued jobs are shed as retriable
// cancellations, in-flight analyses stop at their next query boundary and
// are checkpointed (-checkpoint), and a restarted daemon resumes them
// under their original job IDs. A second signal force-kills.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"qed2/internal/bench"
	"qed2/internal/buildinfo"
	"qed2/internal/core"
	"qed2/internal/faultinject"
	"qed2/internal/obs"
	"qed2/internal/r1cs"
	"qed2/internal/service"
	"qed2/internal/store"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "worker" {
		// Sandbox child: no listener, no signal handling — the parent
		// supervises it and SIGKILLs on overrun.
		os.Exit(service.WorkerMain(os.Args[2:], os.Stdin, os.Stdout, os.Stderr))
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// After the first signal starts the drain, restore the default
		// handlers so a second signal force-kills a hung shutdown.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the daemon with explicit arguments and output streams so
// tests can drive it end to end. It returns once the listener is closed
// and the engine fully drained.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	if _, err := faultinject.EnableFromEnv(); err != nil {
		fmt.Fprintln(stderr, "qed2d:", err)
		return 3
	}
	fs := flag.NewFlagSet("qed2d", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr         = fs.String("addr", "127.0.0.1:9555", "listen address (host:port, port 0 picks one)")
		mode         = fs.String("mode", "qed2", "analysis mode: qed2 | propagation | smt")
		radius       = fs.Int("radius", 2, "slice radius for local uniqueness queries")
		querySteps   = fs.Int64("query-steps", 50_000, "solver step budget per SMT query")
		globalSteps  = fs.Int64("global-steps", 5_000_000, "total solver step budget per job")
		timeout      = fs.Duration("timeout", 0, "wall-clock analysis timeout per job (0 = none)")
		seed         = fs.Int64("seed", 0, "deterministic solver seed")
		queryWorkers = fs.Int("query-workers", 0, "parallel slice-query workers per analysis (0 = GOMAXPROCS)")
		noInc        = fs.Bool("no-incremental", false, "disable incremental slice solving")
		workers      = fs.Int("workers", 1, "concurrent analyses")
		queueDepth   = fs.Int("queue-depth", 64, "maximum queued (not yet running) jobs")
		tenantQuota  = fs.Int("tenant-quota", 0, "maximum queued jobs per tenant (0 = queue-depth)")
		eventBuffer  = fs.Int("event-buffer", 256, "retained progress events per job")
		storeSize    = fs.Int("store-size", 1024, "report-store memory entries")
		storeDir     = fs.String("store-dir", "", "report-store disk tier directory (empty = memory only)")
		noStore      = fs.Bool("no-store", false, "disable the content-addressed report store")
		checkpoint   = fs.String("checkpoint", "", "drain checkpoint path (empty = no drain persistence)")
		drainWait    = fs.Duration("drain-timeout", 30*time.Second, "how long a drain waits for in-flight jobs to stop")
		sandbox      = fs.Bool("sandbox", false, "run each analysis in an isolated worker subprocess")
		jobMemMB     = fs.Int("job-mem-mb", 0, "per-job memory ceiling in MiB for sandbox workers (0 = none)")
		jobWall      = fs.Duration("job-wall", 5*time.Minute, "wall-clock watchdog per sandboxed job")
		quarFaults   = fs.Int("quarantine-faults", 3, "consecutive hard faults before a digest is quarantined")
		quarCooldown = fs.Duration("quarantine-cooldown", 30*time.Second, "quarantine duration before a half-open probe")
		version      = fs.Bool("version", false, "print version information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 3
	}
	if *version {
		fmt.Fprintln(stdout, "qed2d", buildinfo.Get().String())
		return 0
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: qed2d [flags]")
		fs.PrintDefaults()
		return 3
	}

	cfg := core.Config{
		SliceRadius:        *radius,
		QuerySteps:         *querySteps,
		GlobalSteps:        *globalSteps,
		Timeout:            *timeout,
		Seed:               *seed,
		Workers:            *queryWorkers,
		DisableIncremental: *noInc,
	}
	switch *mode {
	case "qed2":
		cfg.Mode = core.ModeFull
	case "propagation":
		cfg.Mode = core.ModePropagationOnly
	case "smt":
		cfg.Mode = core.ModeSMTOnly
	default:
		fmt.Fprintf(stderr, "qed2d: unknown mode %q\n", *mode)
		return 3
	}

	metrics := obs.NewMetrics()
	engineCfg := service.Config{
		Analyzer:       cfg,
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		TenantQuota:    *tenantQuota,
		EventBuffer:    *eventBuffer,
		Library:        bench.Library(),
		Metrics:        metrics,
		CheckpointPath: *checkpoint,
	}
	if *sandbox {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintln(stderr, "qed2d: resolving own binary for -sandbox:", err)
			return 3
		}
		sb := &service.Sandbox{
			Binary:  exe,
			MemMB:   *jobMemMB,
			Wall:    *jobWall,
			Metrics: metrics,
		}
		engineCfg.Runner = sb.Run
		engineCfg.QuarantineThreshold = *quarFaults
		engineCfg.QuarantineCooldown = *quarCooldown
	}
	var st *store.Store
	if !*noStore {
		var err error
		st, err = store.Open(store.Options{
			Capacity: *storeSize,
			Dir:      *storeDir,
			Stamp:    service.Stamp(cfg),
			Metrics:  metrics,
		})
		if err != nil {
			fmt.Fprintln(stderr, "qed2d:", err)
			return 3
		}
		engineCfg.Store = st
		if rep, ok := st.LastScrub(); ok && (rep.Corrupt > 0 || rep.TempRemoved > 0 || rep.Err != "") {
			fmt.Fprintf(stdout, "qed2d: store scrub: %d scanned, %d corrupt quarantined, %d temp removed\n",
				rep.Scanned, rep.Corrupt, rep.TempRemoved)
		}
	}
	engine := service.New(engineCfg)
	if n, err := engine.Resume(); err != nil {
		fmt.Fprintln(stderr, "qed2d:", err)
		engine.Close()
		return 3
	} else if n > 0 {
		fmt.Fprintf(stdout, "qed2d: resumed %d interrupted job(s) from %s\n", n, *checkpoint)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "qed2d:", err)
		engine.Close()
		return 3
	}
	srv := &http.Server{Handler: newHandler(engine, st, metrics, stderr)}
	fmt.Fprintf(stdout, "qed2d %s listening on http://%s\n", buildinfo.Get().ShortRevision(), ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(stderr, "qed2d:", err)
		engine.Close()
		return 3
	case <-ctx.Done():
	}

	// Graceful drain: first stop the engine (new submissions get 503 while
	// the listener still answers polls), then shut the HTTP server down.
	fmt.Fprintln(stdout, "qed2d: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	sum, derr := engine.Drain(drainCtx)
	if derr != nil {
		fmt.Fprintln(stderr, "qed2d: drain:", derr)
	}
	fmt.Fprintf(stdout, "qed2d: drained (%d shed, %d interrupted", sum.Shed, sum.Interrupted)
	if sum.Checkpoint != "" {
		fmt.Fprintf(stdout, ", checkpoint %s", sum.Checkpoint)
	}
	fmt.Fprintln(stdout, ")")
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv.Shutdown(shutCtx); err != nil {
		srv.Close()
	}
	if derr != nil {
		return 3
	}
	return 0
}

// server bundles the handler dependencies.
type server struct {
	engine  *service.Engine
	store   *store.Store // nil with -no-store
	metrics *obs.Metrics
	errlog  io.Writer
}

func newHandler(engine *service.Engine, st *store.Store, metrics *obs.Metrics, errlog io.Writer) http.Handler {
	s := &server{engine: engine, store: st, metrics: metrics, errlog: errlog}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.analyze)
	mux.HandleFunc("GET /v1/jobs", s.jobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.job)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.events)
	mux.HandleFunc("GET /healthz", s.healthz)
	mux.HandleFunc("GET /readyz", s.readyz)
	mux.HandleFunc("GET /metrics", s.metricsHandler)
	return s.recoverMiddleware(mux)
}

// recoverMiddleware is the handler-level panic boundary (and the
// service.handler fault-injection site): a crash in one request becomes a
// 500 for that client, never a dead daemon.
func (s *server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				fmt.Fprintf(s.errlog, "qed2d: panic in %s %s: %v\n", r.Method, r.URL.Path, rec)
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
			}
		}()
		if faultinject.Enabled() {
			if f := faultinject.Check("service.handler"); f.Err != "" || f.Deadline {
				writeError(w, http.StatusInternalServerError, "injected fault: "+f.Err)
				return
			}
		}
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	if w.Header().Get("Content-Type") != "" {
		// Headers already sent (mid-stream failure); nothing sane to add.
		return
	}
	writeJSON(w, status, map[string]string{"error": msg})
}

// maxBody bounds submission bodies (largest suite circuits are ~100 KiB;
// 8 MiB leaves room for generated circuits without inviting abuse).
const maxBody = 8 << 20

// analyze is POST /v1/analyze: submit circom source or an r1cs dump.
func (s *server) analyze(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	if len(body) > maxBody {
		writeError(w, http.StatusRequestEntityTooLarge, "circuit exceeds 8 MiB")
		return
	}
	tenant := r.Header.Get("X-QED2-Tenant")
	text := string(body)
	var job *service.Job
	// A binary snarkjs .r1cs or a text r1cs dump is self-identifying by its
	// header; everything else is treated as circom source. Binary bodies
	// carry no signal names (.sym cannot ride along in the same body), so
	// they are normalized to the text form with synthesized names.
	switch {
	case r1cs.IsBinaryR1CS(body):
		var sys *r1cs.System
		sys, err = r1cs.ParseBinary(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, "binary r1cs: "+err.Error())
			return
		}
		job, err = s.engine.SubmitR1CS(tenant, sys.MarshalText())
	case strings.HasPrefix(strings.TrimLeft(text, " \t\r\n"), "r1cs v1"):
		job, err = s.engine.SubmitR1CS(tenant, text)
	default:
		job, err = s.engine.SubmitSource(tenant, text)
	}
	if err != nil {
		switch {
		case errors.Is(err, service.ErrDraining):
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, service.ErrQueueFull), errors.Is(err, service.ErrTenantQuota):
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, service.ErrQuarantined):
			// Poison digest: fail fast with the remaining breaker cooldown so
			// well-behaved clients retry exactly when a probe can be admitted.
			retry := 1
			var qe *service.QuarantineError
			if errors.As(err, &qe) && qe.RetryAfter > 0 {
				retry = int((qe.RetryAfter + time.Second - 1) / time.Second)
			}
			w.Header().Set("Retry-After", strconv.Itoa(retry))
			writeError(w, http.StatusUnprocessableEntity, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	v := job.View()
	status := http.StatusAccepted
	if v.Status.Terminal() {
		status = http.StatusOK // store hit: answered immediately
	}
	writeJSON(w, status, v)
}

// jobs is GET /v1/jobs.
func (s *server) jobs(w http.ResponseWriter, r *http.Request) {
	all := s.engine.Jobs()
	views := make([]service.JobView, 0, len(all))
	for _, j := range all {
		views = append(views, j.View())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

// job is GET /v1/jobs/{id}.
func (s *server) job(w http.ResponseWriter, r *http.Request) {
	j, ok := s.engine.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.View())
}

// events is GET /v1/jobs/{id}/events: the job's progress feed as NDJSON,
// streamed until the job is terminal or the client disconnects. The
// ?after=N query resumes past already-seen sequence numbers.
func (s *server) events(w http.ResponseWriter, r *http.Request) {
	j, ok := s.engine.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	var after int64
	if q := r.URL.Query().Get("after"); q != "" {
		if _, err := fmt.Sscanf(q, "%d", &after); err != nil {
			writeError(w, http.StatusBadRequest, "bad after cursor")
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		evs, changed := j.EventsSince(after)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
			after = ev.Seq
		}
		if len(evs) > 0 && fl != nil {
			fl.Flush()
		}
		if j.Status().Terminal() {
			if rest, _ := j.EventsSince(after); len(rest) == 0 {
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// healthz is GET /healthz.
func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	info := buildinfo.Get()
	st := s.engine.Stats()
	status := "ok"
	if st.Draining {
		status = "draining"
	}
	out := map[string]any{
		"status":   status,
		"version":  info.Version,
		"revision": info.ShortRevision(),
		"go":       info.GoVersion,
		"queue":    st,
		"stamp":    json.RawMessage(s.engine.ConfigStamp()),
	}
	if n := s.engine.QuarantineOpenCount(); n > 0 {
		out["quarantine_open"] = n
	}
	if s.store != nil {
		if rep, ok := s.store.LastScrub(); ok {
			out["scrub"] = rep
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// readyz is GET /readyz: the routing decision /healthz deliberately does
// not make. The daemon is alive but not ready while draining, while the
// queue is at its admission bound, or after a store scrub failed outright —
// all states where sending fresh traffic elsewhere beats killing a process
// that is still finishing real work. The breaker-open count is reported for
// operators but does not fail readiness: quarantine is per-digest, not
// global.
func (s *server) readyz(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Stats()
	var reasons []string
	if st.Draining {
		reasons = append(reasons, "draining")
	}
	if st.Queued >= st.Depth {
		reasons = append(reasons, "queue saturated")
	}
	out := map[string]any{"queue": st}
	if s.store != nil {
		if rep, ok := s.store.LastScrub(); ok {
			out["scrub"] = rep
			if rep.Err != "" {
				reasons = append(reasons, "store scrub failed: "+rep.Err)
			}
		}
	}
	if n := s.engine.QuarantineOpenCount(); n > 0 {
		out["quarantine_open"] = n
	}
	if len(reasons) > 0 {
		out["ready"] = false
		out["reasons"] = reasons
		writeJSON(w, http.StatusServiceUnavailable, out)
		return
	}
	out["ready"] = true
	writeJSON(w, http.StatusOK, out)
}

// metricsHandler is GET /metrics: every obs counter and histogram as JSON.
func (s *server) metricsHandler(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"counters": s.metrics.Counters(),
	})
}
