package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"qed2/internal/bench"
	"qed2/internal/core"
)

// buildDaemon compiles the qed2d binary into a temp dir.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qed2d")
	out, err := exec.Command("go", "build", "-o", bin, "qed2/cmd/qed2d").CombinedOutput()
	if err != nil {
		t.Fatalf("building qed2d: %v\n%s", err, out)
	}
	return bin
}

// freePort reserves a TCP port so two daemon generations (pre- and
// post-drain) can share one address the replay client keeps dialing.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// daemon wraps a running qed2d subprocess.
type daemon struct {
	cmd    *exec.Cmd
	base   string
	exited chan error
	out    *strings.Builder
	outMu  *sync.Mutex
}

// startDaemon launches qed2d and waits for its listening line.
func startDaemon(t *testing.T, bin, addr string, extra ...string) *daemon {
	t.Helper()
	return startDaemonEnv(t, bin, addr, nil, extra...)
}

// startDaemonEnv is startDaemon with extra environment entries (chaos
// schedules via QED2_FAULTS).
func startDaemonEnv(t *testing.T, bin, addr string, env []string, extra ...string) *daemon {
	t.Helper()
	args := append([]string{"-addr", addr}, extra...)
	cmd := exec.Command(bin, args...)
	if len(env) > 0 {
		cmd.Env = append(os.Environ(), env...)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, exited: make(chan error, 1), out: &strings.Builder{}, outMu: &sync.Mutex{}}
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			d.outMu.Lock()
			d.out.WriteString(line + "\n")
			d.outMu.Unlock()
			if i := strings.Index(line, "listening on http://"); i >= 0 {
				select {
				case ready <- line[i+len("listening on "):]:
				default:
				}
			}
		}
	}()
	go func() { d.exited <- cmd.Wait() }()
	select {
	case base := <-ready:
		d.base = base
	case err := <-d.exited:
		t.Fatalf("qed2d exited before listening: %v\noutput:\n%s", err, d.output())
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("qed2d did not start listening within 30s\noutput:\n%s", d.output())
	}
	return d
}

func (d *daemon) output() string {
	d.outMu.Lock()
	defer d.outMu.Unlock()
	return d.out.String()
}

// terminate sends SIGTERM and waits for a clean exit.
func (d *daemon) terminate(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-d.exited:
	case <-time.After(60 * time.Second):
		d.cmd.Process.Kill()
		t.Fatalf("qed2d did not exit within 60s of SIGTERM\noutput:\n%s", d.output())
	}
	if code := d.cmd.ProcessState.ExitCode(); code != 0 {
		t.Fatalf("qed2d exit = %d, want 0\noutput:\n%s", code, d.output())
	}
}

// getJSON fetches a URL into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s = %d: %s", url, resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

const e2eCircuit = `
template IsZero() {
    signal input in;
    signal output out;
    signal inv;
    inv <-- in != 0 ? 1/in : 0;
    out <== -in*inv + 1;
    in*out === 0;
}
component main = IsZero();
`

// submit POSTs a circuit and decodes the job response.
func submit(t *testing.T, base, tenant, body string) (map[string]any, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/analyze", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-QED2-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return v, resp.StatusCode
}

// pollDone polls a job until terminal, returning its final view.
func pollDone(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		var v map[string]any
		getJSON(t, base+"/v1/jobs/"+id, &v)
		switch v["status"] {
		case "done", "failed", "canceled":
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

func TestVersionFlag(t *testing.T) {
	bin := buildDaemon(t)
	out, err := exec.Command(bin, "-version").CombinedOutput()
	if err != nil {
		t.Fatalf("qed2d -version: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "qed2d ") || !strings.Contains(string(out), "go1") {
		t.Fatalf("version output = %q", out)
	}
}

// TestStoreHitSecondSubmission is the e2e acceptance check: two sequential
// submissions of the same circuit cost one solver run and one store hit,
// visible in the obs counters.
func TestStoreHitSecondSubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a daemon subprocess")
	}
	bin := buildDaemon(t)
	d := startDaemon(t, bin, freePort(t), "-query-steps", "5000", "-global-steps", "100000", "-seed", "1")
	defer d.terminate(t)
	base := d.base

	// Health first: the daemon reports its build and an ok status.
	var hz map[string]any
	getJSON(t, base+"/healthz", &hz)
	if hz["status"] != "ok" || hz["go"] == "" || hz["revision"] == "" {
		t.Fatalf("healthz = %v", hz)
	}

	j1, code := submit(t, base, "alice", e2eCircuit)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("first submit = %d: %v", code, j1)
	}
	v1 := pollDone(t, base, j1["id"].(string))
	rep1 := v1["report"].(map[string]any)
	if v1["status"] != "done" || rep1["verdict"] != "safe" {
		t.Fatalf("first job = %v", v1)
	}
	if v1["cached"] == true {
		t.Fatal("first submission claims a cache hit")
	}

	// Second submission: answered 200 from the store, no analysis.
	j2, code := submit(t, base, "bob", e2eCircuit)
	if code != http.StatusOK {
		t.Fatalf("second submit = %d (want 200 immediate): %v", code, j2)
	}
	if j2["cached"] != true || j2["status"] != "done" {
		t.Fatalf("second submission not served from store: %v", j2)
	}
	if rep2 := j2["report"].(map[string]any); rep2["verdict"] != rep1["verdict"] {
		t.Fatalf("cached verdict %v != fresh %v", rep2["verdict"], rep1["verdict"])
	}

	var m struct {
		Counters map[string]int64 `json:"counters"`
	}
	getJSON(t, base+"/metrics", &m)
	if m.Counters["service.store.misses"] != 1 || m.Counters["service.store.hits"] != 1 {
		t.Fatalf("store counters = %v, want exactly 1 miss + 1 hit", m.Counters)
	}
	if m.Counters["service.jobs.analyzed"] != 1 || m.Counters["service.jobs.cached"] != 1 {
		t.Fatalf("job counters = %v, want 1 analyzed + 1 cached", m.Counters)
	}

	// The event stream replays the job's lifecycle as NDJSON.
	resp, err := http.Get(base + "/v1/jobs/" + j1["id"].(string) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) < 2 {
		t.Fatalf("event stream too short: %q", body)
	}
	var last struct {
		Kind   string `json:"kind"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("last event line unparseable: %v (%q)", err, lines[len(lines)-1])
	}
	if last.Kind != "status" || last.Status != "done" {
		t.Fatalf("last streamed event = %+v, want status/done", last)
	}
}

// e2eConfig mirrors the daemon flags below for in-process comparison runs
// and drain-checkpoint parsing.
func e2eConfig() core.Config {
	return core.Config{QuerySteps: 500, GlobalSteps: 10_000, Seed: 1, Workers: 1}
}

func e2eArgs(ckpt string) []string {
	return []string{
		"-query-steps", "500", "-global-steps", "10000", "-seed", "1",
		"-query-workers", "1", "-workers", "2", "-queue-depth", "64",
		"-checkpoint", ckpt,
	}
}

// TestDrainRestartReplayConverges is the graceful-drain e2e: a suite replay
// over HTTP is interrupted by SIGTERM mid-run, the daemon checkpoints its
// in-flight jobs and exits 0, a restarted daemon resumes them, and the
// replayed verdict set is identical to an in-process run of the same
// instances under the same configuration.
func TestDrainRestartReplayConverges(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e drain/restart takes ~20s")
	}
	bin := buildDaemon(t)
	addr := freePort(t)
	ckpt := filepath.Join(t.TempDir(), "drain.ckpt")
	insts := bench.Suite()[:24]

	d1 := startDaemon(t, bin, addr, e2eArgs(ckpt)...)
	base := "http://" + addr

	var done atomic.Int64
	replayDone := make(chan struct{})
	var results []bench.Result
	var replayErr error
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	go func() {
		defer close(replayDone)
		results, replayErr = bench.ReplayHTTP(ctx, insts, bench.ReplayOptions{
			BaseURL:      base,
			Inflight:     4,
			PollInterval: 10 * time.Millisecond,
			Progress:     func(int, int, bench.Result) { done.Add(1) },
		})
	}()

	// Let some instances complete, then pull the rug.
	waitUntil := time.Now().Add(60 * time.Second)
	for done.Load() < 3 {
		if time.Now().After(waitUntil) {
			t.Fatalf("replay made no progress (done=%d)", done.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	d1.terminate(t)
	if !strings.Contains(d1.output(), "draining") {
		t.Fatalf("daemon did not report draining:\n%s", d1.output())
	}

	// Restart on the same address; the replay client rides out the gap.
	d2 := startDaemon(t, bin, addr, e2eArgs(ckpt)...)
	defer d2.terminate(t)

	select {
	case <-replayDone:
	case <-time.After(4 * time.Minute):
		t.Fatal("replay did not complete after restart")
	}
	if replayErr != nil {
		t.Fatalf("replay failed: %v", replayErr)
	}

	// The interrupted-and-resumed service run must converge to the exact
	// verdict set of an uninterrupted in-process run.
	want := bench.GoldenFromResults(e2eConfig(), bench.Run(insts, &bench.RunOptions{Config: e2eConfig(), Workers: 2}))
	got := bench.GoldenFromResults(e2eConfig(), results)
	diffs, degraded := bench.DiffGolden(want, got)
	if len(diffs) != 0 || len(degraded) != 0 {
		t.Fatalf("service replay diverged from in-process run:\ndiffs: %v\ndegraded: %v", diffs, degraded)
	}
}

// TestServiceGoldenReplay replays the full 163-instance suite over HTTP
// under the golden configuration and diffs against the checked-in golden
// verdicts, with a SIGTERM drain/restart in the middle. Heavy: enabled via
// QED2D_GOLDEN=1 (the service CI job sets it).
func TestServiceGoldenReplay(t *testing.T) {
	if os.Getenv("QED2D_GOLDEN") == "" {
		t.Skip("set QED2D_GOLDEN=1 to run the full golden replay")
	}
	bin := buildDaemon(t)
	addr := freePort(t)
	ckpt := filepath.Join(t.TempDir(), "drain.ckpt")
	args := []string{
		"-query-steps", "20000", "-global-steps", "400000", "-seed", "1",
		"-timeout", "120s", "-query-workers", "1", "-workers", "4",
		"-queue-depth", "200", "-checkpoint", ckpt,
	}
	insts := bench.Suite()

	d1 := startDaemon(t, bin, addr, args...)
	base := "http://" + addr

	var done atomic.Int64
	replayDone := make(chan struct{})
	var results []bench.Result
	var replayErr error
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Minute)
	defer cancel()
	go func() {
		defer close(replayDone)
		results, replayErr = bench.ReplayHTTP(ctx, insts, bench.ReplayOptions{
			BaseURL:      base,
			Inflight:     8,
			PollInterval: 20 * time.Millisecond,
			Progress: func(n, total int, _ bench.Result) {
				if n%20 == 0 {
					fmt.Printf("replay %d/%d\n", n, total)
				}
				done.Add(1)
			},
		})
	}()

	// SIGTERM mid-run, restart, converge.
	waitUntil := time.Now().Add(5 * time.Minute)
	for done.Load() < 20 {
		if time.Now().After(waitUntil) {
			t.Fatalf("replay made no progress (done=%d)", done.Load())
		}
		time.Sleep(20 * time.Millisecond)
	}
	d1.terminate(t)
	d2 := startDaemon(t, bin, addr, args...)
	defer d2.terminate(t)

	select {
	case <-replayDone:
	case <-ctx.Done():
		t.Fatal("golden replay did not complete")
	}
	if replayErr != nil {
		t.Fatalf("replay failed: %v", replayErr)
	}

	goldenCfg := core.Config{QuerySteps: 20_000, GlobalSteps: 400_000, Seed: 1}
	golden, err := bench.LoadGolden(filepath.Join("..", "..", "testdata", "golden_verdicts.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The golden file also covers the generated corpus; this replay only
	// drives the hand-written suite.
	golden = golden.Restrict(bench.InstanceNames(insts))
	fresh := bench.GoldenFromResults(goldenCfg, results)
	diffs, degraded := bench.DiffGolden(golden, fresh)
	if len(diffs) != 0 {
		t.Fatalf("service replay diverged from golden verdicts:\n%s", strings.Join(diffs, "\n"))
	}
	if len(degraded) != 0 {
		t.Fatalf("service replay left degraded verdicts after restart:\n%s", strings.Join(degraded, "\n"))
	}
}
