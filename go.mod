module qed2

go 1.22
